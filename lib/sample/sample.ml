(** Mixed-mode sampled simulation: fast-forward with functional warming
    plus periodic detailed intervals (SMARTS-style periodic sampling on
    top of the paper's seamless native/simulation mode switching, §4.1).

    The supervisor drives a {!Ptl_hyper.Domain} through a repeating

      fast-forward (native, warmed) -> warm-up (timed, unmeasured)
        -> measure (timed, measured)

    schedule. Fast-forward executes on the sequential functional core at
    native speed while *functionally warming* the long-lived
    microarchitectural state the timed core will read — L1/L2/L3 cache
    tags and recency, both TLB levels, the branch direction tables,
    BTB and return address stack — using the silent [warm_*] entry
    points, so no statistics counters move and no trace events are
    emitted outside measured intervals. The warm-up phase then runs the
    timed core unmeasured long enough for the short-lived pipeline state
    (ROB, queues, MSHRs) to settle; the measure phase brackets a
    {!Ptl_stats.Statstree} snapshot pair whose deltas become one sampled
    interval.

    The warmed structures live in a shared {!Ptl_ooo.Uarch} installed
    into the domain with {!Ptl_hyper.Domain.set_uarch}, so they survive
    the per-entry core rebuilds of [enter_sim].

    Aggregation follows SMARTS: the whole-run CPI estimate is
    sum(cycles)/sum(insns) over the measured intervals, the confidence
    interval is the 95% normal interval of the per-interval CPIs, and
    the estimated full-detail cycle count is total insns x aggregate
    CPI.

    The guest can gate sampling to a region of interest with the
    [-startsample] / [-stopsample] ptlcalls; under [~roi:true] the
    supervisor fast-forwards (still warming) until the ROI opens and
    ignores instructions outside it when scheduling intervals. *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Seqcore = Ptl_arch.Seqcore
module Hierarchy = Ptl_mem.Hierarchy
module Tlb = Ptl_mem.Tlb
module Pwc = Ptl_mem.Pwc
module Pm = Ptl_mem.Phys_mem
module Pt = Ptl_mem.Pagetable
module Predictor = Ptl_bpred.Predictor
module Rng = Ptl_util.Rng
module Stats = Ptl_stats.Statstree
module Timelapse = Ptl_stats.Timelapse
module Trace = Ptl_trace.Trace
module Uarch = Ptl_ooo.Uarch
module Registry = Ptl_ooo.Registry
module Domain = Ptl_hyper.Domain
module Checkpoint = Ptl_hyper.Checkpoint
module Ptlcall = Ptl_hyper.Ptlcall

(* ---------------------------------------------------------------- *)
(* Schedule and flag validation                                      *)
(* ---------------------------------------------------------------- *)

type schedule = {
  ff_insns : int;  (* native instructions fast-forwarded per period *)
  warmup_insns : int;  (* timed but unmeasured instructions *)
  measure_insns : int;  (* timed, measured instructions *)
}

let default_period = 1_000_000
let default_warmup = 20_000
let default_measure = 30_000

let period schedule =
  schedule.ff_insns + schedule.warmup_insns + schedule.measure_insns

(** Validate the sampling CLI flag combination and derive the schedule.
    [ff] and [period] are the raw [--sample-ff] / [--sample-period]
    options (mutually exclusive; a period is converted to a
    fast-forward length by subtracting warm-up and measure). Mirrors
    {!Ptl_fuzz.Harness.check_flags}: returns [Error] with a
    user-ranked message instead of raising. *)
let check_flags ~core ~ff ~period ~warmup ~measure ~guard_degrade ~fuzz () :
    (schedule, string) result =
  let ( let* ) r f = match r with Error _ as e -> e | Ok x -> f x in
  let* () =
    if fuzz then
      Error
        "--sample-* cannot be combined with the fuzz subcommand: fuzzing \
         cosimulates every instruction on both engines, so there is \
         nothing to fast-forward"
    else Ok ()
  in
  let* () =
    if guard_degrade then
      Error
        "--sample-* cannot be combined with --guard-degrade: degraded \
         recovery switches core models under the sampler, which would \
         silently change what the measured intervals measure"
    else Ok ()
  in
  let* () =
    match core with
    | "seq" ->
      Error
        "--core seq cannot be sampled: the sequential core has no timed \
         pipeline to measure (pick ooo, smt or inorder)"
    | c when not (List.mem c (Ptl_ooo.Registry.names ())) ->
      Error (Printf.sprintf "--core %s: unknown core model" c)
    | _ -> Ok ()
  in
  let* () =
    if measure < 1 then
      Error "--sample-measure must be at least 1 instruction"
    else Ok ()
  in
  let* () =
    if warmup < 0 then Error "--sample-warmup cannot be negative" else Ok ()
  in
  let* ff =
    match (ff, period) with
    | Some _, Some _ ->
      Error "give either --sample-ff or --sample-period, not both"
    | Some f, None ->
      if f < 0 then Error "--sample-ff cannot be negative" else Ok f
    | None, p ->
      let p = Option.value p ~default:default_period in
      if p <= warmup + measure then
        Error
          (Printf.sprintf
             "--sample-period %d must exceed warmup+measure (%d) so some \
              instructions are actually fast-forwarded"
             p (warmup + measure))
      else Ok (p - warmup - measure)
  in
  Ok { ff_insns = ff; warmup_insns = warmup; measure_insns = measure }

(* ---------------------------------------------------------------- *)
(* Interval placement                                                *)
(* ---------------------------------------------------------------- *)

(** Where each period's warm-up + measure window sits within the period.
    The offset is the number of fast-forwarded instructions *before* the
    window; the remaining [ff_insns - offset] are fast-forwarded after
    it, so a period always executes the same instruction budget.

    - [Fixed]: offset = [ff_insns] — the window closes each period, the
      original (and default) schedule. A workload whose phase length
      divides the period aliases with this: every window lands on the
      same phase.
    - [Rand_offset seed]: a uniformly random offset per period from a
      dedicated deterministic {!Rng}; breaks phase aliasing (SMARTS'
      systematic-sampling caveat) while staying reproducible per seed.
    - [Stratified]: period [i] uses the midpoint of stratum
      [i mod strata], sweeping the window across the period
      deterministically with no RNG at all. *)
type placement = Fixed | Rand_offset of int | Stratified

(** Strata a [Stratified] schedule rotates through. *)
let strata = 8

let placement_to_string = function
  | Fixed -> "fixed"
  | Rand_offset seed -> Printf.sprintf "rand:%d" seed
  | Stratified -> "stratified"

(** Parse a [--sample-offset] spec: [fixed] (default), [rand:SEED] or
    [stratified]. *)
let parse_placement = function
  | "" | "fixed" -> Ok Fixed
  | "stratified" -> Ok Stratified
  | s when String.length s > 5 && String.sub s 0 5 = "rand:" -> (
    match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
    | Some seed -> Ok (Rand_offset seed)
    | None ->
      Error
        (Printf.sprintf "--sample-offset %s: SEED must be an integer" s))
  | "rand" -> Error "--sample-offset rand needs a seed: rand:SEED"
  | other ->
    Error
      (Printf.sprintf
         "--sample-offset %s: expected fixed, rand:SEED or stratified" other)

(** Offset generator for a run: maps the period index to that period's
    window offset in [0, ff_insns]. [Rand_offset] placers are stateful —
    call once per period, in increasing period order — which both the
    serial and the checkpoint-parallel supervisors do by construction
    (offsets are always drawn on the single master pass). *)
let make_placer placement schedule =
  let ff = schedule.ff_insns in
  match placement with
  | Fixed -> fun _ -> ff
  | Stratified ->
    fun i ->
      if ff = 0 then 0 else (((2 * (i mod strata)) + 1) * ff) / (2 * strata)
  | Rand_offset seed ->
    let rng = Rng.create seed in
    fun _ -> if ff = 0 then 0 else Rng.int rng (ff + 1)

(** The first [n] offsets a placement yields (tests and tooling); drawn
    in period order, so deterministic per seed. *)
let offsets placement schedule n =
  let placer = make_placer placement schedule in
  let out = Array.make (max n 0) 0 in
  for i = 0 to n - 1 do
    out.(i) <- placer i
  done;
  out

(* ---------------------------------------------------------------- *)
(* Results                                                           *)
(* ---------------------------------------------------------------- *)

(** One measured interval: the [Statstree] snapshot pair bracketing it
    plus the committed-instruction and cycle deltas between them. *)
type interval = {
  iv_index : int;
  iv_insns : int;
  iv_cycles : int;
  iv_cpi : float;
  iv_before : Stats.snapshot;
  iv_after : Stats.snapshot;
}

type result = {
  intervals : interval list;  (** in measurement order *)
  total_insns : int;  (** all instructions committed during the run *)
  total_cycles : int;  (** virtual cycles elapsed during the run *)
  measured_insns : int;
  measured_cycles : int;
  cpi : float;  (** aggregate: measured cycles / measured insns *)
  cpi_mean : float;  (** mean of the per-interval CPIs *)
  cpi_ci95 : float;  (** 95% confidence half-width of [cpi_mean] *)
  est_cycles : float;  (** total_insns x aggregate CPI *)
}

(** Fold measured intervals into the whole-run estimate (pure; unit
    tested against hand-computed values). *)
let aggregate ~total_insns ~total_cycles intervals =
  let n = List.length intervals in
  let measured_insns =
    List.fold_left (fun a iv -> a + iv.iv_insns) 0 intervals
  and measured_cycles =
    List.fold_left (fun a iv -> a + iv.iv_cycles) 0 intervals
  in
  let cpi =
    if measured_insns = 0 then 0.0
    else float_of_int measured_cycles /. float_of_int measured_insns
  in
  let cpi_mean =
    if n = 0 then 0.0
    else
      List.fold_left (fun a iv -> a +. iv.iv_cpi) 0.0 intervals
      /. float_of_int n
  in
  let cpi_ci95 =
    if n <= 1 then 0.0
    else begin
      let var =
        List.fold_left
          (fun a iv ->
            let d = iv.iv_cpi -. cpi_mean in
            a +. (d *. d))
          0.0 intervals
        /. float_of_int (n - 1)
      in
      1.96 *. sqrt (var /. float_of_int n)
    end
  in
  {
    intervals;
    total_insns;
    total_cycles;
    measured_insns;
    measured_cycles;
    cpi;
    cpi_mean;
    cpi_ci95;
    est_cycles = float_of_int total_insns *. cpi;
  }

(* Per-interval counter deltas (snapshot subtraction): what the sweep
   engine's MPKI columns are computed from. *)
let interval_stat iv path = Stats.delta iv.iv_before iv.iv_after path

let result_stat r path =
  List.fold_left (fun acc iv -> acc + interval_stat iv path) 0 r.intervals

(* ---------------------------------------------------------------- *)
(* Functional warming                                                *)
(* ---------------------------------------------------------------- *)

(** Hook the native sequential core so every fast-forwarded instruction
    warms [uarch] architecturally: TLB fills fall back to a silent page
    walk (faulting accesses warm nothing — the native core raises the
    real fault itself), cache updates go through the [warm_*] hierarchy
    entry points, branches train the direction tables / BTB / RAS. No
    statistics counters move and no trace events are emitted. *)
let install_warming (d : Domain.t) (u : Uarch.t) =
  let env = d.Domain.env and ctx = d.Domain.ctx in
  let tlb_gen_seen = ref ctx.Context.tlb_generation in
  (* 1-entry line memos: consecutive accesses to the same 64B line leave
     every warmed structure in the same state (the line stays
     most-recently-used), so skipping them loses nothing but sub-line
     LRU-stamp precision and makes warming ~3x cheaper per instruction.
     -1 never matches a real line index. *)
  let last_iline = ref (-1) and last_lline = ref (-1)
  and last_sline = ref (-1) in
  let line_of vaddr = Int64.to_int (Int64.shift_right_logical vaddr 6) in
  let check_gen () =
    if ctx.Context.tlb_generation <> !tlb_gen_seen then begin
      tlb_gen_seen := ctx.Context.tlb_generation;
      Tlb.flush u.Uarch.dtlb;
      Tlb.flush u.Uarch.itlb;
      Option.iter Pwc.flush u.Uarch.pwc;
      last_iline := -1;
      last_lline := -1;
      last_sline := -1
    end
  in
  let hugepages = d.Domain.config.Ptl_ooo.Config.tlb_hugepages in
  let translate tlb ~vaddr ~write ~exec =
    match Tlb.lookup_quiet tlb vaddr with
    | Tlb.L1_hit e | Tlb.L2_hit e -> Some (Tlb.paddr_of e vaddr)
    | Tlb.Tlb_miss -> (
      match
        Pt.walk env.Env.mem ~cr3_mfn:ctx.Context.cr3 ~vaddr ~write
          ~user:(ctx.Context.mode = Context.User) ~exec ~set_ad:false ()
      with
      | Error _ -> None
      | Ok tr ->
        let e = Tlb.entry_of_walk tr in
        let e =
          if e.Tlb.huge && not hugepages then
            { e with Tlb.huge = false; mfn = tr.Pt.mfn }
          else e
        in
        Tlb.insert tlb vaddr e;
        (* warm the page-walk caches exactly as the timed walk would *)
        (match u.Uarch.pwc with
        | Some pwc ->
          ignore (Pwc.lookup_quiet pwc vaddr);
          Pwc.insert pwc vaddr ~pte_addrs:tr.Pt.pte_addrs
        | None -> ());
        Some
          (Pm.paddr_of_mfn tr.Pt.mfn
           + Int64.to_int (Int64.logand vaddr (Int64.of_int Pm.page_mask))))
  in
  d.Domain.native.Seqcore.hooks <-
    Some
      {
        Seqcore.h_load =
          (fun ~vaddr ~rip:_ ->
            check_gen ();
            let line = line_of vaddr in
            if line <> !last_lline then begin
              last_lline := line;
              match translate u.Uarch.dtlb ~vaddr ~write:false ~exec:false with
              | Some paddr -> Hierarchy.warm_load u.Uarch.hierarchy ~paddr
              | None -> ()
            end);
        h_store =
          (fun ~vaddr ~rip:_ ->
            check_gen ();
            let line = line_of vaddr in
            if line <> !last_sline then begin
              last_sline := line;
              match translate u.Uarch.dtlb ~vaddr ~write:true ~exec:false with
              | Some paddr -> Hierarchy.warm_store u.Uarch.hierarchy ~paddr
              | None -> ()
            end);
        h_branch =
          (fun ~rip ~taken ~target ~conditional ~call ~ret ~next_rip ->
            if conditional then Predictor.warm_cond u.Uarch.bpred ~rip ~taken;
            if taken && target <> 0L then
              Predictor.warm_target u.Uarch.bpred ~rip ~target;
            Predictor.warm_ras u.Uarch.bpred ~call ~ret ~next_rip);
        h_insn =
          (fun ~rip ~kernel:_ ->
            check_gen ();
            let line = line_of rip in
            if line <> !last_iline then begin
              last_iline := line;
              match
                translate u.Uarch.itlb ~vaddr:rip ~write:false ~exec:true
              with
              | Some paddr -> Hierarchy.warm_ifetch u.Uarch.hierarchy ~paddr
              | None -> ()
            end);
      };
  (* memo reset, called at every window-capture point: the memos are
     harness state outside the checkpoint, so a resumed pass (which
     reinstalls the hooks fresh) must meet the same cold memos the
     original pass had at that boundary, or the first repeated-line
     access after the boundary would warm the hierarchy/TLB LRU in one
     run and be skipped in the other *)
  fun () ->
    last_iline := -1;
    last_lline := -1;
    last_sline := -1

let remove_warming (d : Domain.t) = d.Domain.native.Seqcore.hooks <- None

(* ---------------------------------------------------------------- *)
(* Supervisor                                                        *)
(* ---------------------------------------------------------------- *)

(* Under sampling the supervisor owns the schedule, so queued guest
   commands are reduced to the ones that still make sense: ROI toggles
   and -kill. -run / -native / -core would fight the phase machine. *)
let drain_commands (d : Domain.t) =
  match d.Domain.pending with
  | [] -> ()
  | cmds ->
    d.Domain.pending <- [];
    List.iter
      (fun cmd ->
        match cmd with
        | Ptlcall.Sample_start -> d.Domain.sample_roi <- true
        | Ptlcall.Sample_stop -> d.Domain.sample_roi <- false
        | Ptlcall.Kill -> d.Domain.killed <- true
        | Ptlcall.Snapshot -> (
          match d.Domain.timelapse with
          | Some tl -> Timelapse.finish tl ~cycle:d.Domain.env.Env.cycle
          | None -> ())
        | other ->
          Logs.debug (fun m ->
              m "sample: ignoring guest command %s under sampling"
                (Ptlcall.command_to_string other)))
      cmds

(** Run the domain to completion (guest shutdown / halt / -kill /
    budget) under the sampling [schedule]. With [~roi:true] the
    measured periods only advance while the guest-controlled
    [-startsample] region is open; fast-forward (and warming) continues
    outside it. Returns the per-interval records and the aggregate CPI
    estimate. *)
let run ?(roi = false) ?(placement = Fixed) ?(max_insns = max_int)
    ?(max_cycles = max_int) ~schedule (d : Domain.t) =
  let env = d.Domain.env and ctx = d.Domain.ctx in
  let stats = env.Env.stats in
  let c_intervals = Stats.counter stats "sample.intervals"
  and c_ff = Stats.counter stats "sample.ff_insns"
  and c_warm = Stats.counter stats "sample.warmup_insns"
  and c_meas_i = Stats.counter stats "sample.measured_insns"
  and c_meas_c = Stats.counter stats "sample.measured_cycles" in
  let uarch =
    match d.Domain.uarch with
    | Some u -> u
    | None ->
      let u = Uarch.create ~prefix:d.Domain.core_name d.Domain.config stats in
      Domain.set_uarch d u;
      u
  in
  let (_ : unit -> unit) = install_warming d uarch in
  if not roi then d.Domain.sample_roi <- true;
  let start_cycle = env.Env.cycle
  and start_insns = ctx.Context.insns_committed in
  let finished = ref false in
  let out_of_budget () =
    ctx.Context.insns_committed - start_insns >= max_insns
    || env.Env.cycle - start_cycle >= max_cycles
  in
  let tick () =
    drain_commands d;
    if d.Domain.killed || out_of_budget () then begin
      finished := true;
      false
    end
    else if Domain.drive_once d then true
    else begin
      finished := true;
      false
    end
  in
  (* Fast-forward [n] ROI instructions on the native core; instructions
     committed while the ROI is closed warm but do not count. *)
  let drive_ff n =
    Domain.enter_native d;
    let remaining = ref n in
    let last = ref ctx.Context.insns_committed in
    while (not !finished) && (!remaining > 0 || (roi && not d.Domain.sample_roi))
    do
      if tick () then begin
        let now = ctx.Context.insns_committed in
        if d.Domain.sample_roi then remaining := !remaining - (now - !last);
        last := now
      end
    done
  in
  (* Drive the timed core until [n] more instructions commit. *)
  let drive_sim n =
    Domain.enter_sim d;
    let target = ctx.Context.insns_committed + n in
    while (not !finished) && ctx.Context.insns_committed < target do
      ignore (tick ())
    done
  in
  let placer = make_placer placement schedule in
  let intervals = ref [] in
  let idx = ref 0 in
  let period_idx = ref 0 in
  while not !finished do
    (* [off] native instructions lead the window; the remaining
       [ff_insns - off] trail it, so every period spends the same budget
       wherever the window lands. Under [Fixed] off = ff_insns and the
       trailing leg vanishes — byte-identical to the legacy schedule. *)
    let off = placer !period_idx in
    incr period_idx;
    let i_ff = ctx.Context.insns_committed in
    drive_ff off;
    Stats.add c_ff (ctx.Context.insns_committed - i_ff);
    if not !finished then begin
      let i_warm = ctx.Context.insns_committed in
      drive_sim schedule.warmup_insns;
      Stats.add c_warm (ctx.Context.insns_committed - i_warm)
    end;
    if not !finished then begin
      Trace.sample_boundary ();
      let before = Stats.snapshot stats ~cycle:env.Env.cycle in
      let i0 = ctx.Context.insns_committed in
      drive_sim schedule.measure_insns;
      let after = Stats.snapshot stats ~cycle:env.Env.cycle in
      let insns = ctx.Context.insns_committed - i0 in
      let cycles = after.Stats.cycle - before.Stats.cycle in
      if insns > 0 then begin
        intervals :=
          {
            iv_index = !idx;
            iv_insns = insns;
            iv_cycles = cycles;
            iv_cpi = float_of_int cycles /. float_of_int insns;
            iv_before = before;
            iv_after = after;
          }
          :: !intervals;
        incr idx;
        Stats.incr c_intervals;
        Stats.add c_meas_i insns;
        Stats.add c_meas_c cycles
      end
    end;
    if (not !finished) && schedule.ff_insns - off > 0 then begin
      let i_tail = ctx.Context.insns_committed in
      drive_ff (schedule.ff_insns - off);
      Stats.add c_ff (ctx.Context.insns_committed - i_tail)
    end
  done;
  remove_warming d;
  Domain.enter_native d;
  (match d.Domain.timelapse with
  | Some tl -> Timelapse.finish tl ~cycle:env.Env.cycle
  | None -> ());
  aggregate
    ~total_insns:(ctx.Context.insns_committed - start_insns)
    ~total_cycles:(env.Env.cycle - start_cycle)
    (List.rev !intervals)

(* ---------------------------------------------------------------- *)
(* Checkpoint-parallel sampling                                      *)
(* ---------------------------------------------------------------- *)

(** Validate a [--sample-jobs] request. [kernel] says whether the domain
    hosts a minios instance; [tracing] whether an event trace is armed.
    Mirrors {!check_flags}: [Error] with a user-ranked message. *)
let check_jobs ~jobs ~kernel ~tracing () : (unit, string) Stdlib.result =
  if jobs < 1 then Error "--sample-jobs must be at least 1"
  else if kernel then
    Error
      "--sample-jobs needs a bare-machine workload: kernel-hosted domains \
       carry host-side minios state (processes, descriptors, pending \
       events) that cannot be checkpointed (use compute --bare)"
  else if tracing && jobs > 1 then
    Error
      "--sample-jobs above 1 cannot be combined with --trace/--trace-stream: \
       the event ring is process-global and parallel workers would \
       interleave in it"
  else Ok ()

(* Drive a freshly restored private core through warm-up + measure and
   package the measured window. Shared by the full-checkpoint and
   delta-checkpoint replay paths; determinism follows because the
   result is a pure function of the restored state and the schedule.
   [progress] (default no-op) is invoked every ~2k pipeline steps — a
   cheap liveness hook fleet workers use to heartbeat their lease
   while a slow interval replays; it must not touch simulator state. *)
let replay_measure ?(progress = fun () -> ()) ~inst ~stats ~(env : Env.t)
    ~(ctx : Context.t) ~schedule ~index () =
  let halted () =
    (not ctx.Context.running)
    && (not (Context.interruptible ctx))
    && inst.Registry.idle ()
  in
  let steps = ref 0 in
  let drive n =
    let target = ctx.Context.insns_committed + n in
    while (not (halted ())) && ctx.Context.insns_committed < target do
      inst.Registry.step ();
      incr steps;
      if !steps land 2047 = 0 then progress ()
    done
  in
  drive schedule.warmup_insns;
  let before = Stats.snapshot stats ~cycle:env.Env.cycle in
  let i0 = ctx.Context.insns_committed in
  drive schedule.measure_insns;
  let after = Stats.snapshot stats ~cycle:env.Env.cycle in
  let insns = ctx.Context.insns_committed - i0 in
  let cycles = after.Stats.cycle - before.Stats.cycle in
  if insns > 0 then
    Some
      {
        iv_index = index;
        iv_insns = insns;
        iv_cycles = cycles;
        iv_cpi = float_of_int cycles /. float_of_int insns;
        iv_before = before;
        iv_after = after;
      }
  else None

(** Replay one measured interval from a full checkpoint on completely
    private state: a fresh physical memory + context + {!Uarch} +
    {!Stats} tree are built, the checkpoint restored into them, and a
    private core instance drives warm-up then measure. Nothing here
    touches the master domain, so any number of these can run on
    separate {!Stdlib.Domain}s at once; determinism follows because the
    result is a pure function of the checkpoint and the schedule.
    Returns [None] when the guest halts before committing a single
    measured instruction.

    [wrap] (both replay builders) interposes on the freshly built core
    instance before it drives — how fleet workers put a {!Ptl_guard}
    supervisor around each leased interval, turning a mid-replay
    invariant breach into a typed failure instead of a dead worker. *)
let replay_interval ?progress ?wrap ~core_name ~config ~schedule ~index
    (ck : Checkpoint.full) =
  let stats = Stats.create () in
  let env = Env.create ~stats () in
  let ctx = Context.create ~vcpu_id:0 in
  let uarch = Uarch.create ~prefix:core_name config stats in
  (* fit-tolerant: a sweep leg with a different geometry starts the
     mismatched components cold (the warm-up phase re-warms them);
     same-config replays restore exactly *)
  ignore (Checkpoint.restore_full_fit ck ~uarch env ctx : string list);
  let inst = Registry.build ~uarch core_name config env [| ctx |] in
  let inst = match wrap with None -> inst | Some w -> w ~env ~ctx inst in
  replay_measure ?progress ~inst ~stats ~env ~ctx ~schedule ~index ()

(** Replay one measured interval from a delta checkpoint. The private
    memory is a copy-on-write clone of the shared base image overlaid
    with the interval's dirty pages — O(frames + footprint) to build —
    and the private {!Uarch} restores from [base + changed components].
    Restored state is identical to what {!replay_interval} sees from a
    full checkpoint of the same moment, so the interval record is too. *)
let replay_delta ?progress ?wrap ~core_name ~config ~schedule ~index
    ~(base : Checkpoint.base) (d : Checkpoint.delta) =
  let stats = Stats.create () in
  let mem = Checkpoint.clone_mem ~base d in
  let env = Env.create ~stats ~mem () in
  let ctx = Context.create ~vcpu_id:0 in
  let uarch = Uarch.create ~prefix:core_name config stats in
  (* fit-tolerant, as in replay_interval: sweep legs may change the
     geometry of what the checkpoint warmed *)
  ignore (Checkpoint.restore_delta_into_fit ~base d ~uarch env ctx : string list);
  let inst = Registry.build ~uarch core_name config env [| ctx |] in
  let inst = match wrap with None -> inst | Some w -> w ~env ~ctx inst in
  replay_measure ?progress ~inst ~stats ~env ~ctx ~schedule ~index ()

(** What one master capture pass produced: the shared base image, one
    delta checkpoint per measured window, the whole-run totals, and the
    capture-cost accounting (delta vs full page payloads). This is what
    [optlsim capture] spills into a durable store (lib/store) and what
    {!run_parallel} replays in-process. *)
type capture_run = {
  cr_base : Checkpoint.base;
  cr_deltas : Checkpoint.delta array;  (** by capture index *)
  cr_insns : int;  (** instructions committed during the pass *)
  cr_cycles : int;  (** virtual cycles elapsed during the pass *)
  cr_delta_bytes : int;  (** page payload actually captured *)
  cr_full_bytes : int;  (** what full per-window images would have cost *)
}

(** One captured window, streamed to [?on_window] as it lands — the
    journaling hook resumable capture is built on. *)
type window = {
  w_index : int;
  w_delta : Checkpoint.delta;
  w_delta_bytes : int;
  w_full_bytes : int;
}

(** Where an interrupted capture left off: the base image, the last
    journaled delta (whose capture moment the resumed pass restarts
    from), how many windows are already safe on disk, and their byte
    accounting (so the resumed run's totals cover the whole pass). *)
type resume_point = {
  rs_base : Checkpoint.base;
  rs_last : Checkpoint.delta;
  rs_count : int;
  rs_delta_bytes : int;
  rs_full_bytes : int;
}

(** The master pass of checkpoint-parallel sampling: drive the whole
    workload on the native core with functional warming (the master
    never runs the timed core), capture a {!Checkpoint.base} up front
    and a cheap {!Checkpoint.delta} — dirty pages + changed
    microarchitectural components only — at the start of every
    warm-up+measure window. The windows themselves are advanced
    natively; replaying them timed is the workers' job ({!replay_delta},
    in-process via {!run_parallel} or from a durable store via
    lib/fleet). ROI gating as in {!run}.

    [on_base] / [on_window] stream the base image and each delta as
    they are captured (journaling); [resume] restarts an interrupted
    pass from its last journaled window instead of from scratch. The
    domain must be rebuilt exactly as for the original pass (same
    workload, machine, schedule, placement): the resumed pass restores
    the last delta's capture moment — {!Checkpoint.resume_delta}
    re-arms dirty tracking to the original run's — re-draws the placer
    prefix, and re-drives the already-journaled window natively, so
    every subsequent delta is byte-identical to the uninterrupted
    run's. On resume [cr_deltas] holds only the windows captured by
    this process (the journal already has the prefix), while the
    insn/cycle/byte totals cover the whole pass.

    Raises [Invalid_argument] for kernel-hosted domains — host-side
    minios state is not checkpointable ({!check_jobs} reports the same
    condition as a CLI error). *)
let run_capture ?(roi = false) ?(placement = Fixed) ?(max_insns = max_int)
    ?(max_cycles = max_int) ?(on_base = fun _ -> ()) ?(on_window = fun _ -> ())
    ?resume ~schedule (d : Domain.t) =
  if d.Domain.kernel <> None then
    invalid_arg
      "Sample.run_capture: kernel-hosted domains are not checkpointable";
  let env = d.Domain.env and ctx = d.Domain.ctx in
  let stats = env.Env.stats in
  let c_ff = Stats.counter stats "sample.ff_insns"
  and c_ckpt = Stats.counter stats "sample.checkpoints"
  and c_ckpt_pages = Stats.counter stats "sample.checkpoint_pages" in
  let uarch =
    match d.Domain.uarch with
    | Some u -> u
    | None ->
      let u = Uarch.create ~prefix:d.Domain.core_name d.Domain.config stats in
      Domain.set_uarch d u;
      u
  in
  if not roi then d.Domain.sample_roi <- true;
  (* entry totals read before any restore: a resumed pass rebuilds the
     domain deterministically, so they equal the original pass's and
     the final insn/cycle totals come out whole-run *)
  let start_cycle = env.Env.cycle
  and start_insns = ctx.Context.insns_committed in
  let finished = ref false in
  let out_of_budget () =
    ctx.Context.insns_committed - start_insns >= max_insns
    || env.Env.cycle - start_cycle >= max_cycles
  in
  let tick () =
    drain_commands d;
    if d.Domain.killed || out_of_budget () then begin
      finished := true;
      false
    end
    else if Domain.drive_once d then true
    else begin
      finished := true;
      false
    end
  in
  let drive_ff n =
    Domain.enter_native d;
    let remaining = ref n in
    let last = ref ctx.Context.insns_committed in
    while (not !finished) && (!remaining > 0 || (roi && not d.Domain.sample_roi))
    do
      if tick () then begin
        let now = ctx.Context.insns_committed in
        if d.Domain.sample_roi then remaining := !remaining - (now - !last);
        last := now
      end
    done
  in
  let base =
    match resume with
    | None ->
      let b = Checkpoint.capture_base ~uarch env in
      on_base b;
      b
    | Some rs ->
      Checkpoint.resume_delta ~base:rs.rs_base rs.rs_last ~uarch env ctx;
      rs.rs_base
  in
  (* warming hooks install after any restore: their TLB-generation memo
     must match the live context, or the first warmed access would
     flush the restored TLB contents the original run kept *)
  let reset_memos = install_warming d uarch in
  let placer = make_placer placement schedule in
  let window = schedule.warmup_insns + schedule.measure_insns in
  let deltas = ref [] (* newest first; reversed below *) in
  let delta_bytes = ref 0 and full_bytes = ref 0 in
  let period_idx = ref 0 in
  (match resume with
  | None -> ()
  | Some rs ->
    delta_bytes := rs.rs_delta_bytes;
    full_bytes := rs.rs_full_bytes;
    (* re-draw the placer prefix — stateful [Rand_offset] placers must
       see every period in order — keeping the offset of the window we
       restarted from *)
    let last_off = ref schedule.ff_insns in
    for i = 0 to rs.rs_count - 1 do
      last_off := placer i
    done;
    period_idx := rs.rs_count;
    (* the restored moment is the START of journaled window
       [rs_count-1]: re-drive it (and its period's trailing
       fast-forward) natively to reach the next period's entry state *)
    let i_re = ctx.Context.insns_committed in
    drive_ff window;
    if (not !finished) && schedule.ff_insns - !last_off > 0 then
      drive_ff (schedule.ff_insns - !last_off);
    Stats.add c_ff (ctx.Context.insns_committed - i_re));
  while not !finished do
    let off = placer !period_idx in
    incr period_idx;
    let i_ff = ctx.Context.insns_committed in
    drive_ff off;
    Stats.add c_ff (ctx.Context.insns_committed - i_ff);
    if not !finished then begin
      let dk = Checkpoint.capture_delta ~base ~uarch env ctx in
      let db = Checkpoint.delta_page_bytes dk
      and fb = Checkpoint.full_page_bytes env in
      deltas := dk :: !deltas;
      delta_bytes := !delta_bytes + db;
      full_bytes := !full_bytes + fb;
      Stats.incr c_ckpt;
      Stats.add c_ckpt_pages (Checkpoint.delta_pages dk);
      on_window
        {
          w_index = !period_idx - 1;
          w_delta = dk;
          w_delta_bytes = db;
          w_full_bytes = fb;
        };
      (* cold memos at the capture point, matching a resumed pass *)
      reset_memos ();
      (* advance natively through the window so the next period starts
         from sequential state; the workers will re-execute it timed *)
      drive_ff window
    end;
    if (not !finished) && schedule.ff_insns - off > 0 then begin
      let i_tail = ctx.Context.insns_committed in
      drive_ff (schedule.ff_insns - off);
      Stats.add c_ff (ctx.Context.insns_committed - i_tail)
    end
  done;
  remove_warming d;
  Domain.enter_native d;
  (match d.Domain.timelapse with
  | Some tl -> Timelapse.finish tl ~cycle:env.Env.cycle
  | None -> ());
  {
    cr_base = base;
    cr_deltas = Array.of_list (List.rev !deltas);
    cr_insns = ctx.Context.insns_committed - start_insns;
    cr_cycles = env.Env.cycle - start_cycle;
    cr_delta_bytes = !delta_bytes;
    cr_full_bytes = !full_bytes;
  }

(** Replay every interval of a capture on [jobs] worker
    {!Stdlib.Domain}s pulling indices from a shared {!Atomic} cursor,
    each on fully private state ({!replay_delta}). The result array is
    indexed by capture index, so it is bit-identical for any [jobs] and
    any completion order; [jobs = 1] runs the same replay path inline. *)
let replay_capture ~core_name ~config ~schedule ?(jobs = 1)
    (cr : capture_run) =
  if jobs < 1 then invalid_arg "Sample.replay_capture: jobs must be >= 1";
  let n = Array.length cr.cr_deltas in
  let results = Array.make n None in
  let base = cr.cr_base in
  let next = Atomic.make 0 in
  (* Workers steal the next un-replayed interval; each writes only its
     own cell of [results], published to the master by [Domain.join]. *)
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue := false
      else
        results.(i) <-
          replay_delta ~core_name ~config ~schedule ~index:i ~base
            cr.cr_deltas.(i)
    done
  in
  if jobs = 1 then worker ()
  else begin
    let doms =
      Array.init (jobs - 1) (fun _ -> Stdlib.Domain.spawn worker)
    in
    worker ();
    Array.iter Stdlib.Domain.join doms
  end;
  results

(** Checkpoint-parallel sampled run: {!run_capture} followed by
    {!replay_capture}, with results merged by capture index — the
    merged report is bit-identical for any [jobs] value and any
    completion order. Raises [Invalid_argument] for kernel-hosted
    domains — see {!check_jobs}. *)
let run_parallel ?(roi = false) ?(placement = Fixed) ?(max_insns = max_int)
    ?(max_cycles = max_int) ?(jobs = 1) ~schedule (d : Domain.t) =
  if jobs < 1 then invalid_arg "Sample.run_parallel: jobs must be >= 1";
  if d.Domain.kernel <> None then
    invalid_arg
      "Sample.run_parallel: kernel-hosted domains are not checkpointable";
  let stats = d.Domain.env.Env.stats in
  let c_intervals = Stats.counter stats "sample.intervals"
  and c_meas_i = Stats.counter stats "sample.measured_insns"
  and c_meas_c = Stats.counter stats "sample.measured_cycles" in
  let cr = run_capture ~roi ~placement ~max_insns ~max_cycles ~schedule d in
  let results =
    replay_capture ~core_name:d.Domain.core_name ~config:d.Domain.config
      ~schedule ~jobs cr
  in
  (* merge in capture order: independent of job count and completion
     order, so the report is bit-identical across --sample-jobs *)
  let intervals = Array.to_list results |> List.filter_map Fun.id in
  List.iter
    (fun iv ->
      Stats.incr c_intervals;
      Stats.add c_meas_i iv.iv_insns;
      Stats.add c_meas_c iv.iv_cycles)
    intervals;
  aggregate ~total_insns:cr.cr_insns ~total_cycles:cr.cr_cycles intervals

(* ---------------------------------------------------------------- *)
(* Reporting                                                         *)
(* ---------------------------------------------------------------- *)

(** Human-readable per-interval table plus the aggregate estimate, the
    [optlsim --sample] end-of-run report. *)
let report oc r =
  Printf.fprintf oc "sampled run: %d interval(s), %d/%d insns measured\n"
    (List.length r.intervals) r.measured_insns r.total_insns;
  Printf.fprintf oc "  %-9s %12s %12s %8s\n" "interval" "insns" "cycles" "cpi";
  List.iter
    (fun iv ->
      Printf.fprintf oc "  %-9d %12d %12d %8.3f\n" iv.iv_index iv.iv_insns
        iv.iv_cycles iv.iv_cpi)
    r.intervals;
  Printf.fprintf oc "aggregate CPI %.4f (mean %.4f +/- %.4f, 95%% CI)\n" r.cpi
    r.cpi_mean r.cpi_ci95;
  Printf.fprintf oc
    "estimated full-detail cycles %.0f for %d insns (ran %d virtual cycles)\n"
    r.est_cycles r.total_insns r.total_cycles

(** {!report}, then — only when [quarantined] is non-empty — an explicit
    DEGRADED section: coverage over the [count] captured intervals, each
    quarantined index with its retry count and the first line of its
    last diagnostic. With no quarantined intervals the output is
    byte-identical to {!report}, so healthy runs cannot be told apart
    from runs through the degraded path. [quarantined] pairs are
    [(index, diagnostics)] with diagnostics newest first. *)
let report_degraded oc ~count ~quarantined r =
  report oc r;
  match quarantined with
  | [] -> ()
  | q ->
    let q = List.sort (fun (a, _) (b, _) -> compare a b) q in
    let nq = List.length q in
    let survived = count - nq in
    Printf.fprintf oc
      "DEGRADED: %d of %d interval(s) quarantined, coverage %.1f%%\n" nq count
      (if count = 0 then 0.0
       else 100.0 *. float_of_int survived /. float_of_int count);
    List.iter
      (fun (i, diags) ->
        let last = match diags with d :: _ -> d | [] -> "" in
        let first_line =
          match String.index_opt last '\n' with
          | Some j -> String.sub last 0 j
          | None -> last
        in
        Printf.fprintf oc "  interval %-4d %d failure(s): %s\n" i
          (List.length diags) first_line)
      q;
    Printf.fprintf oc
      "estimates above cover the %d surviving interval(s) only\n" survived
