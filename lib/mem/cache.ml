(** Set-associative cache array with banking, write-back dirty state and
    pluggable replacement.

    This is the building block for the L1 I/D, L2 and L3 models in
    {!Hierarchy}. It models tag state only (data lives in guest physical
    memory); what matters for cycle accuracy is hits, misses, evictions,
    dirty write-backs and bank conflicts. The K8 experiment (paper §5) uses
    the banking model: the K8 L1 D-cache is pseudo dual-ported with 8 banks
    along 64-bit boundaries, and colliding accesses replay for one cycle. *)

open Ptl_util

type replacement = Lru | Random_repl | Fifo

type config = {
  name : string;
  size_bytes : int;
  line_size : int;
  ways : int;
  latency : int;  (* access latency in cycles on a hit *)
  banks : int;  (* 1 = no banking *)
  replacement : replacement;
}

let k8_l1d =
  {
    name = "L1D";
    size_bytes = 64 * 1024;
    line_size = 64;
    ways = 2;
    latency = 3;
    banks = 8;
    replacement = Lru;
  }

let k8_l1i = { k8_l1d with name = "L1I"; banks = 1 }

let k8_l2 =
  {
    name = "L2";
    size_bytes = 1024 * 1024;
    line_size = 64;
    ways = 16;
    latency = 10;
    banks = 1;
    replacement = Lru;
  }

type line = {
  mutable tag : int;  (* -1 = invalid *)
  mutable dirty : bool;
  mutable stamp : int;  (* LRU recency or FIFO insertion order *)
}

type t = {
  config : config;
  sets : int;
  lines : line array array;
  rng : Rng.t;
  mutable tick : int;
  (* statistics *)
  hits : Ptl_stats.Statstree.counter;
  misses : Ptl_stats.Statstree.counter;
  writebacks : Ptl_stats.Statstree.counter;
}

let create ?(stats_prefix = "") stats config =
  if not (Bitops.is_pow2 config.line_size) then invalid_arg "Cache: line size";
  let nlines = config.size_bytes / config.line_size in
  if nlines mod config.ways <> 0 then invalid_arg "Cache: geometry";
  let sets = nlines / config.ways in
  if not (Bitops.is_pow2 sets) then invalid_arg "Cache: sets must be a power of two";
  let prefix =
    if stats_prefix = "" then "cache." ^ config.name else stats_prefix ^ "." ^ config.name
  in
  let counter suffix = Ptl_stats.Statstree.counter stats (prefix ^ "." ^ suffix) in
  {
    config;
    sets;
    lines =
      Array.init sets (fun _ ->
          Array.init config.ways (fun _ -> { tag = -1; dirty = false; stamp = 0 }));
    rng = Rng.create (Hashtbl.hash config.name);
    tick = 0;
    hits = counter "hits";
    misses = counter "misses";
    writebacks = counter "writebacks";
  }

let line_shift t = Bitops.log2 t.config.line_size
let line_addr t paddr = Bitops.align_down paddr t.config.line_size
let set_of t paddr = (paddr lsr line_shift t) land (t.sets - 1)
let tag_of t paddr = paddr lsr line_shift t

(** Bank touched by an access (banks divide the line along 8-byte words,
    K8-style). *)
let bank_of t paddr = (paddr lsr 3) land (t.config.banks - 1)

(** Non-destructive presence test. *)
let probe t paddr =
  let s = set_of t paddr and tag = tag_of t paddr in
  Array.exists (fun l -> l.tag = tag) t.lines.(s)

type access_result =
  | Hit
  (* Miss carrying the dirty victim line's physical address needing
     write-back, if any. The line is filled (allocated) by the access. *)
  | Miss of { writeback : int option }

let pick_victim t set =
  let ways = t.lines.(set) in
  (* Prefer an invalid way. *)
  let rec find_invalid w =
    if w >= Array.length ways then None
    else if ways.(w).tag = -1 then Some w
    else find_invalid (w + 1)
  in
  match find_invalid 0 with
  | Some w -> w
  | None ->
    (match t.config.replacement with
    | Random_repl -> Rng.int t.rng t.config.ways
    | Lru | Fifo ->
      let victim = ref 0 and best = ref max_int in
      Array.iteri
        (fun w l ->
          if l.stamp < !best then begin
            best := l.stamp;
            victim := w
          end)
        ways;
      !victim)

(** Access (and allocate on miss) the line containing [paddr].
    [write] marks the line dirty on hit or after fill. *)
let access t paddr ~write =
  t.tick <- t.tick + 1;
  let s = set_of t paddr and tag = tag_of t paddr in
  let ways = t.lines.(s) in
  let rec find w = if w >= Array.length ways then None else if ways.(w).tag = tag then Some w else find (w + 1) in
  match find 0 with
  | Some w ->
    Ptl_stats.Statstree.incr t.hits;
    if !Ptl_trace.Trace.on then
      Ptl_trace.Trace.emit ~info:(Int64.of_int paddr) ~tag:t.config.name
        Ptl_trace.Trace.Cache_hit;
    if t.config.replacement = Lru then ways.(w).stamp <- t.tick;
    if write then ways.(w).dirty <- true;
    Hit
  | None ->
    Ptl_stats.Statstree.incr t.misses;
    if !Ptl_trace.Trace.on then
      Ptl_trace.Trace.emit ~info:(Int64.of_int paddr) ~tag:t.config.name
        Ptl_trace.Trace.Cache_miss;
    let w = pick_victim t s in
    let victim = ways.(w) in
    let writeback =
      if victim.tag >= 0 && victim.dirty then begin
        Ptl_stats.Statstree.incr t.writebacks;
        Some (victim.tag lsl line_shift t)
      end
      else None
    in
    victim.tag <- tag;
    victim.dirty <- write;
    victim.stamp <- t.tick;
    Miss { writeback }

(** Functional warming (sampled simulation fast-forward): update tag,
    LRU recency and dirty state exactly as [access] would — allocating on
    a miss — but without touching the hit/miss/writeback counters or
    emitting trace events, so measured-interval statistics stay clean.
    Dirty victims are silently dropped (data lives in guest physical
    memory; only the tag state matters for timing fidelity). *)
let warm t paddr ~write =
  t.tick <- t.tick + 1;
  let s = set_of t paddr and tag = tag_of t paddr in
  let ways = t.lines.(s) in
  let rec find w =
    if w >= Array.length ways then None
    else if ways.(w).tag = tag then Some w
    else find (w + 1)
  in
  match find 0 with
  | Some w ->
    if t.config.replacement = Lru then ways.(w).stamp <- t.tick;
    if write then ways.(w).dirty <- true
  | None ->
    let w = pick_victim t s in
    let victim = ways.(w) in
    victim.tag <- tag;
    victim.dirty <- write;
    victim.stamp <- t.tick

(** Insert a line without counting an access (prefetch fills). *)
let fill t paddr =
  let s = set_of t paddr and tag = tag_of t paddr in
  let ways = t.lines.(s) in
  if not (Array.exists (fun l -> l.tag = tag) ways) then begin
    t.tick <- t.tick + 1;
    let w = pick_victim t s in
    let victim = ways.(w) in
    victim.tag <- tag;
    victim.dirty <- false;
    victim.stamp <- t.tick
  end

(** Invalidate the line containing [paddr]; returns true if it was present
    and dirty (caller must write back). *)
let invalidate t paddr =
  let s = set_of t paddr and tag = tag_of t paddr in
  let dirty = ref false in
  Array.iter
    (fun l ->
      if l.tag = tag then begin
        if l.dirty then dirty := true;
        l.tag <- -1;
        l.dirty <- false
      end)
    t.lines.(s);
  !dirty

let flush_all t =
  Array.iter
    (fun ways ->
      Array.iter
        (fun l ->
          l.tag <- -1;
          l.dirty <- false)
        ways)
    t.lines

(** Number of valid lines (occupancy invariant checks in tests). *)
let occupancy t =
  Array.fold_left
    (fun acc ways ->
      acc + Array.fold_left (fun a l -> if l.tag >= 0 then a + 1 else a) 0 ways)
    0 t.lines

(** Tag/LRU structural consistency for the guard registry: no duplicate
    tags within a set, no garbage tags, and no recency stamp from the
    future. Returns a violation description, or None. *)
let check t =
  let violation = ref None in
  let note fmt = Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt in
  Array.iteri
    (fun s ways ->
      let seen = Hashtbl.create 8 in
      Array.iter
        (fun l ->
          if l.tag < -1 then note "%s set %d: invalid tag %d" t.config.name s l.tag
          else if l.tag >= 0 then begin
            if Hashtbl.mem seen l.tag then
              note "%s set %d: duplicate tag %#x" t.config.name s l.tag;
            Hashtbl.replace seen l.tag ();
            if l.stamp > t.tick then
              note "%s set %d tag %#x: stamp %d from the future (tick %d)"
                t.config.name s l.tag l.stamp t.tick
          end)
        ways)
    t.lines;
  !violation

(** Planted corruption for guard self-tests: copy the tag of the first
    valid line into another way of the same set. *)
let debug_duplicate_tag t =
  if t.config.ways < 2 then false
  else begin
    let done_ = ref false in
    Array.iter
      (fun ways ->
        if not !done_ then
          Array.iteri
            (fun w l ->
              if (not !done_) && l.tag >= 0 && w + 1 < Array.length ways then begin
                ways.(w + 1).tag <- l.tag;
                ways.(w + 1).dirty <- false;
                ways.(w + 1).stamp <- l.stamp;
                done_ := true
              end)
            ways)
      t.lines;
    !done_
  end

(* ---------- checkpointing (sampled-simulation parallel workers) ---------- *)

(** Deep copy of the tag array, the replacement tick and the replacement
    RNG cursor — everything a restored cache needs to replay an access
    stream identically. Statistics counters are deliberately excluded:
    they belong to the owning {!Ptl_stats.Statstree}. *)
type snapshot = {
  sn_lines : (int * bool * int) array array;  (* (tag, dirty, stamp) *)
  sn_tick : int;
  sn_rng : Rng.snapshot;
}

let snapshot t =
  {
    sn_lines =
      Array.map (Array.map (fun l -> (l.tag, l.dirty, l.stamp))) t.lines;
    sn_tick = t.tick;
    sn_rng = Rng.snapshot t.rng;
  }

(** Whether [snapshot] came from a cache of this geometry (same set
    count and associativity) — the precondition of {!restore}. Sweep
    legs replaying a checkpoint under a different geometry check this
    and start the cache cold instead. *)
let fits t snapshot =
  Array.length snapshot.sn_lines = t.sets
  && Array.for_all
       (fun ways -> Array.length ways = t.config.ways)
       snapshot.sn_lines

let restore t ~snapshot =
  if Array.length snapshot.sn_lines <> t.sets then
    invalid_arg "Cache.restore: geometry mismatch";
  Array.iteri
    (fun s ways ->
      Array.iteri
        (fun w (tag, dirty, stamp) ->
          let l = t.lines.(s).(w) in
          l.tag <- tag;
          l.dirty <- dirty;
          l.stamp <- stamp)
        ways)
    snapshot.sn_lines;
  t.tick <- snapshot.sn_tick;
  Rng.restore t.rng ~snapshot:snapshot.sn_rng

(** Compare the live cache state against a snapshot; returns one line per
    mismatch (tag/dirty/LRU-stamp per way, plus the tick and RNG
    cursors). Empty = exact match. The checkpoint round-trip harness
    leans on this to prove save/restore is lossless. *)
let diff t snapshot =
  let out = ref [] in
  let note fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  if Array.length snapshot.sn_lines <> t.sets then
    note "%s: snapshot geometry mismatch" t.config.name
  else begin
    Array.iteri
      (fun s ways ->
        Array.iteri
          (fun w (tag, dirty, stamp) ->
            let l = t.lines.(s).(w) in
            if l.tag <> tag then
              note "%s set %d way %d: tag %#x vs %#x" t.config.name s w l.tag
                tag
            else begin
              if l.dirty <> dirty then
                note "%s set %d way %d: dirty %b vs %b" t.config.name s w
                  l.dirty dirty;
              if l.stamp <> stamp then
                note "%s set %d way %d: lru stamp %d vs %d" t.config.name s w
                  l.stamp stamp
            end)
          ways)
      snapshot.sn_lines;
    if t.tick <> snapshot.sn_tick then
      note "%s: tick %d vs %d" t.config.name t.tick snapshot.sn_tick;
    if not (Rng.equal_snapshot t.rng snapshot.sn_rng) then
      note "%s: replacement rng state differs" t.config.name
  end;
  List.rev !out

(** Planted corruption for checkpoint round-trip self-tests: bump the LRU
    stamp of the first valid line (returns false when the cache is
    empty). *)
let debug_touch_lru t =
  let done_ = ref false in
  Array.iter
    (fun ways ->
      Array.iter
        (fun l ->
          if (not !done_) && l.tag >= 0 then begin
            t.tick <- t.tick + 1;
            l.stamp <- t.tick;
            done_ := true
          end)
        ways)
    t.lines;
  !done_

(** Configured hit latency (cycles). *)
let latency t = t.config.latency

let hits t = Ptl_stats.Statstree.value t.hits
let misses t = Ptl_stats.Statstree.value t.misses
let accesses t = hits t + misses t
