(** Page-walk caches (PWCs): per-level translation caches inside the
    hardware walker, in the style of the split translation caches on
    modern x86 (and the Virtuoso/gem5 MMU caches). Each of the three
    upper levels of the 4-level tree gets a fully-associative, LRU cache
    mapping a virtual-address prefix to the physical frame of the
    next-level table. A hit at depth [d] lets the walker skip the loads
    of all levels above it and resume [d + 1] loads from the leaf (depth
    0 = the cache in front of the leaf PTE table: one load left).

    The PWC is microarchitectural state exactly like a TLB: it joins the
    uarch snapshot/diff/fit-restore family so sampled and fleet replay
    stay bit-identical, and geometry-changing sweep legs restore
    fit-tolerantly (cold PWC, re-warm). *)

(** Cached depths: 0 caches the leaf-PTE table (1 walk load left),
    1 the PDE table (2 left), 2 the PDPT (3 left). *)
let depths = 3

type lvl = {
  tags : int64 array;  (* va prefix, or -1L invalid *)
  mfns : int array;  (* physical frame of the next-level table *)
  lru : int array;
}

type t = {
  name : string;
  entries : int;  (* per depth *)
  levels : lvl array;  (* index = depth *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(name = "pwc") ~entries () =
  if entries <= 0 then invalid_arg "Pwc.create: entries must be positive";
  {
    name;
    entries;
    levels =
      Array.init depths (fun _ ->
          {
            tags = Array.make entries (-1L);
            mfns = Array.make entries 0;
            lru = Array.make entries 0;
          });
    tick = 0;
    hits = 0;
    misses = 0;
  }

(* Prefix key for a depth: depth 0 keys on bits 21.., depth 1 on 30..,
   depth 2 on 39.. *)
let key_of vaddr depth =
  Int64.shift_right_logical vaddr (Pagetable.huge_shift + (Pagetable.index_bits * depth))

let lvl_find lvl tag =
  let n = Array.length lvl.tags in
  let rec go i = if i >= n then None else if lvl.tags.(i) = tag then Some i else go (i + 1) in
  go 0

(** Deepest hit for [vaddr]: [Some depth] (0 = one walk load left), or
    [None]. Updates LRU and the hit/miss counters, and emits
    [Pwc_hit]/[Pwc_miss] trace events when tracing is armed. *)
let lookup t vaddr =
  let rec probe depth =
    if depth >= depths then None
    else
      match lvl_find t.levels.(depth) (key_of vaddr depth) with
      | Some i ->
        t.tick <- t.tick + 1;
        t.levels.(depth).lru.(i) <- t.tick;
        Some depth
      | None -> probe (depth + 1)
  in
  let hit = probe 0 in
  (match hit with
  | Some depth ->
    t.hits <- t.hits + 1;
    if !Ptl_trace.Trace.on then
      Ptl_trace.Trace.emit ~info:vaddr ~slot:depth ~tag:t.name
        Ptl_trace.Trace.Pwc_hit
  | None ->
    t.misses <- t.misses + 1;
    if !Ptl_trace.Trace.on then
      Ptl_trace.Trace.emit ~info:vaddr ~tag:t.name Ptl_trace.Trace.Pwc_miss);
  hit

(** [lookup] minus counters and trace events (functional warming). *)
let lookup_quiet t vaddr =
  let rec probe depth =
    if depth >= depths then None
    else
      match lvl_find t.levels.(depth) (key_of vaddr depth) with
      | Some i ->
        t.tick <- t.tick + 1;
        t.levels.(depth).lru.(i) <- t.tick;
        Some depth
      | None -> probe (depth + 1)
  in
  probe 0

let lvl_insert t lvl tag mfn =
  let n = Array.length lvl.tags in
  let victim = ref 0 in
  let best = ref max_int in
  (try
     for i = 0 to n - 1 do
       if lvl.tags.(i) = tag || lvl.tags.(i) = -1L then begin
         victim := i;
         raise Exit
       end;
       if lvl.lru.(i) < !best then begin
         best := lvl.lru.(i);
         victim := i
       end
     done
   with Exit -> ());
  t.tick <- t.tick + 1;
  lvl.tags.(!victim) <- tag;
  lvl.mfns.(!victim) <- mfn;
  lvl.lru.(!victim) <- t.tick

(** Remember the tables a successful walk traversed. [pte_addrs] is the
    walk's load list, root first (4 loads for a 4K mapping, 3 for a 2M
    leaf): the table holding load [i > 0] is cacheable at depth
    [len - 1 - i]. The root table (CR3) is not cached. *)
let insert t vaddr ~pte_addrs =
  let addrs = Array.of_list pte_addrs in
  let len = Array.length addrs in
  for i = 1 to len - 1 do
    let depth = len - 1 - i in
    if depth < depths then
      lvl_insert t t.levels.(depth) (key_of vaddr depth)
        (addrs.(i) lsr Phys_mem.page_shift)
  done

(** Walk loads left after consulting the PWC for a walk that would
    otherwise issue [walk_len] loads ([walk_len] = 4, or 3 for a huge
    mapping; a PDE-cache short-circuit may already have cut it to 1). *)
let loads_left t vaddr ~walk_len =
  match lookup t vaddr with
  | None -> walk_len
  | Some depth -> max 1 (walk_len - (depths - depth))

let hits t = t.hits
let misses t = t.misses

let flush t =
  Array.iter
    (fun lvl ->
      Array.fill lvl.tags 0 (Array.length lvl.tags) (-1L);
      Array.fill lvl.mfns 0 (Array.length lvl.mfns) 0;
      Array.fill lvl.lru 0 (Array.length lvl.lru) 0)
    t.levels

(** Drop any cached prefix covering [vaddr] (invlpg / shootdown). *)
let flush_page t vaddr =
  Array.iteri
    (fun depth lvl ->
      let tag = key_of vaddr depth in
      Array.iteri
        (fun i t' ->
          if t' = tag then begin
            lvl.tags.(i) <- -1L;
            lvl.mfns.(i) <- 0;
            lvl.lru.(i) <- 0
          end)
        lvl.tags)
    t.levels

(* ---------- checkpointing (sampled/fleet replay) ---------- *)

type snapshot = {
  sn_entries : int;
  sn_tags : int64 array array;
  sn_mfns : int array array;
  sn_lru : int array array;
  sn_tick : int;
  sn_hits : int;
  sn_misses : int;
}

let snapshot t =
  {
    sn_entries = t.entries;
    sn_tags = Array.map (fun l -> Array.copy l.tags) t.levels;
    sn_mfns = Array.map (fun l -> Array.copy l.mfns) t.levels;
    sn_lru = Array.map (fun l -> Array.copy l.lru) t.levels;
    sn_tick = t.tick;
    sn_hits = t.hits;
    sn_misses = t.misses;
  }

(** Whether [snapshot] came from a PWC of this geometry. *)
let fits t s = s.sn_entries = t.entries && Array.length s.sn_tags = depths

let restore t ~snapshot:s =
  if not (fits t s) then invalid_arg "Pwc.restore: geometry mismatch";
  Array.iteri
    (fun d lvl ->
      Array.blit s.sn_tags.(d) 0 lvl.tags 0 t.entries;
      Array.blit s.sn_mfns.(d) 0 lvl.mfns 0 t.entries;
      Array.blit s.sn_lru.(d) 0 lvl.lru 0 t.entries)
    t.levels;
  t.tick <- s.sn_tick;
  t.hits <- s.sn_hits;
  t.misses <- s.sn_misses

(** Every mismatch between the live state and a snapshot; empty = exact. *)
let diff t s =
  let out = ref [] in
  let note fmt = Printf.ksprintf (fun str -> out := str :: !out) fmt in
  if not (fits t s) then note "%s: snapshot geometry mismatch" t.name
  else begin
    Array.iteri
      (fun d lvl ->
        for i = 0 to t.entries - 1 do
          if lvl.tags.(i) <> s.sn_tags.(d).(i) then
            note "%s depth %d slot %d: tag %#Lx vs %#Lx" t.name d i lvl.tags.(i)
              s.sn_tags.(d).(i)
          else begin
            if lvl.mfns.(i) <> s.sn_mfns.(d).(i) then
              note "%s depth %d slot %d: mfn %#x vs %#x" t.name d i lvl.mfns.(i)
                s.sn_mfns.(d).(i);
            if lvl.lru.(i) <> s.sn_lru.(d).(i) then
              note "%s depth %d slot %d: lru %d vs %d" t.name d i lvl.lru.(i)
                s.sn_lru.(d).(i)
          end
        done)
      t.levels;
    if t.tick <> s.sn_tick then note "%s: tick %d vs %d" t.name t.tick s.sn_tick;
    if t.hits <> s.sn_hits || t.misses <> s.sn_misses then
      note "%s: hit/miss counters %d/%d vs %d/%d" t.name t.hits t.misses
        s.sn_hits s.sn_misses
  end;
  List.rev !out

(* ---------- guard inspection hooks ---------- *)

(** Internal consistency: no duplicate tags within a depth, no LRU stamp
    from the future. Returns a violation description, or [None]. *)
let check t =
  let violation = ref None in
  let note fmt =
    Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt
  in
  Array.iteri
    (fun d lvl ->
      let seen = Hashtbl.create 8 in
      Array.iteri
        (fun i tag ->
          if tag <> -1L then begin
            if Hashtbl.mem seen tag then
              note "%s depth %d: duplicate prefix %#Lx" t.name d tag;
            Hashtbl.replace seen tag ();
            if lvl.lru.(i) > t.tick then
              note "%s depth %d slot %d: lru stamp %d from the future (tick %d)"
                t.name d i lvl.lru.(i) t.tick
          end)
        lvl.tags)
    t.levels;
  !violation

(** All valid entries as (depth, prefix, table mfn) triples — the guard's
    PWC↔pagetable agreement check walks these. *)
let entries t =
  let out = ref [] in
  Array.iteri
    (fun d lvl ->
      Array.iteri
        (fun i tag -> if tag <> -1L then out := (d, tag, lvl.mfns.(i)) :: !out)
        lvl.tags)
    t.levels;
  !out
