(** Guest physical memory: a sparse set of 4 KiB machine frames (MFNs).

    Like Xen, the hypervisor hands out arbitrary non-contiguous machine
    frame numbers rather than a linear span starting at zero (paper §3), so
    frames live in a hash table and the allocator can be seeded to start at
    any MFN. Physical addresses are OCaml [int]s (the guest physical space
    is far below 2^62); all multi-byte accesses are little-endian and may
    cross page boundaries. *)

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

type t = {
  frames : (int, Bytes.t) Hashtbl.t;
  mutable next_mfn : int;
  mutable allocated : int;
}

let create ?(first_mfn = 0x100) () =
  { frames = Hashtbl.create 1024; next_mfn = first_mfn; allocated = 0 }

let mfn_of_paddr paddr = paddr lsr page_shift
let offset_of_paddr paddr = paddr land page_mask
let paddr_of_mfn mfn = mfn lsl page_shift

let page_exists t mfn = Hashtbl.mem t.frames mfn

(** Frame backing [mfn], allocating a zeroed frame on first touch. *)
let frame t mfn =
  match Hashtbl.find_opt t.frames mfn with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\x00' in
    Hashtbl.add t.frames mfn b;
    t.allocated <- t.allocated + 1;
    b

(** Allocate a fresh frame and return its MFN. *)
let alloc_page t =
  let mfn = t.next_mfn in
  t.next_mfn <- t.next_mfn + 1;
  ignore (frame t mfn);
  mfn

let allocated_pages t = t.allocated

(** MFNs whose contents differ between two memories, including frames
    present in only one of them, sorted ascending. Empty = identical
    contents (a frame of zeroes and an absent frame count as different:
    allocation state is part of the machine state). *)
let diff a b =
  let differing = ref [] in
  Hashtbl.iter
    (fun mfn fa ->
      match Hashtbl.find_opt b.frames mfn with
      | Some fb -> if not (Bytes.equal fa fb) then differing := mfn :: !differing
      | None -> differing := mfn :: !differing)
    a.frames;
  Hashtbl.iter
    (fun mfn _ ->
      if not (Hashtbl.mem a.frames mfn) then differing := mfn :: !differing)
    b.frames;
  List.sort_uniq compare !differing

let read8 t paddr =
  Char.code (Bytes.get (frame t (mfn_of_paddr paddr)) (offset_of_paddr paddr))

let write8 t paddr v =
  Bytes.set (frame t (mfn_of_paddr paddr)) (offset_of_paddr paddr)
    (Char.chr (v land 0xFF))

(* Multi-byte accesses use the fast within-page path when possible and a
   byte loop when the access straddles a frame boundary. *)
let read_n t paddr n =
  let off = offset_of_paddr paddr in
  if off + n <= page_size then begin
    let b = frame t (mfn_of_paddr paddr) in
    match n with
    | 1 -> Int64.of_int (Char.code (Bytes.get b off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le b off)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le b off)) 0xFFFFFFFFL
    | 8 -> Bytes.get_int64_le b off
    | _ -> Ptl_util.W64.of_bytes n (fun i -> Char.code (Bytes.get b (off + i)))
  end
  else Ptl_util.W64.of_bytes n (fun i -> read8 t (paddr + i))

let write_n t paddr n v =
  let off = offset_of_paddr paddr in
  if off + n <= page_size then begin
    let b = frame t (mfn_of_paddr paddr) in
    match n with
    | 1 -> Bytes.set b off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    | 2 -> Bytes.set_uint16_le b off (Int64.to_int (Int64.logand v 0xFFFFL))
    | 4 -> Bytes.set_int32_le b off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le b off v
    | _ ->
      for i = 0 to n - 1 do
        Bytes.set b (off + i) (Char.chr (Ptl_util.W64.byte v i))
      done
  end
  else
    for i = 0 to n - 1 do
      write8 t (paddr + i) (Ptl_util.W64.byte v i)
    done

let read16 t paddr = Int64.to_int (read_n t paddr 2)
let read32 t paddr = read_n t paddr 4
let read64 t paddr = read_n t paddr 8
let write16 t paddr v = write_n t paddr 2 (Int64.of_int v)
let write32 t paddr v = write_n t paddr 4 v
let write64 t paddr v = write_n t paddr 8 v

(** Sized access in terms of {!Ptl_util.W64.size}. *)
let read_sized t paddr size = read_n t paddr (Ptl_util.W64.bytes_of_size size)
let write_sized t paddr size v = write_n t paddr (Ptl_util.W64.bytes_of_size size) v

(** Copy a string into physical memory at [paddr]. *)
let write_string t paddr s =
  String.iteri (fun i c -> write8 t (paddr + i) (Char.code c)) s

(** Read [n] bytes starting at [paddr]. *)
let read_string t paddr n = String.init n (fun i -> Char.chr (read8 t (paddr + i)))

(** Deep copy (for domain checkpointing). *)
let copy t =
  let frames = Hashtbl.create (Hashtbl.length t.frames) in
  Hashtbl.iter (fun mfn b -> Hashtbl.add frames mfn (Bytes.copy b)) t.frames;
  { frames; next_mfn = t.next_mfn; allocated = t.allocated }

(** Restore [t] to the state captured in [snapshot] (in place, so existing
    references to [t] stay valid). *)
let restore t ~snapshot =
  Hashtbl.reset t.frames;
  Hashtbl.iter (fun mfn b -> Hashtbl.add t.frames mfn (Bytes.copy b)) snapshot.frames;
  t.next_mfn <- snapshot.next_mfn;
  t.allocated <- snapshot.allocated
