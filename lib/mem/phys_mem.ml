(** Guest physical memory: a sparse set of 4 KiB machine frames (MFNs).

    Like Xen, the hypervisor hands out arbitrary non-contiguous machine
    frame numbers rather than a linear span starting at zero (paper §3), so
    frames live in a hash table and the allocator can be seeded to start at
    any MFN. Physical addresses are OCaml [int]s (the guest physical space
    is far below 2^62); all multi-byte accesses are little-endian and may
    cross page boundaries.

    Two mechanisms support cheap checkpointing (lib/hyper/checkpoint):

    - {b dirty tracking}: every frame touched by a write (or newly
      allocated — allocation state is machine state) since the last
      {!clear_dirty} is remembered, so a delta checkpoint serializes
      only the pages an interval actually touched instead of the whole
      guest image.
    - {b copy-on-write cloning}: {!clone_cow} builds a memory whose
      frames share bytes with a base image; a frame is copied privately
      the first time it is written. Replay workers clone the master
      image in O(frames) pointer copies instead of O(bytes), and the
      base stays immutable, so any number of workers (even on separate
      {!Stdlib.Domain}s) can share one base. *)

let page_shift = 12
let page_size = 1 lsl page_shift
let page_mask = page_size - 1

type t = {
  frames : (int, Bytes.t) Hashtbl.t;
  mutable next_mfn : int;
  mutable allocated : int;
  (* MFNs written or allocated since [clear_dirty]. *)
  dirty : (int, unit) Hashtbl.t;
  (* memo: the last MFN marked dirty, so a run of writes to one page
     costs one compare instead of a hash probe each (-1 = none). A
     memoized MFN is always already dirty and privately owned. *)
  mutable last_dirty : int;
  (* frames whose bytes are shared with a base image (clone_cow); copy
     before the first write. *)
  cow : (int, unit) Hashtbl.t;
}

let create ?(first_mfn = 0x100) () =
  {
    frames = Hashtbl.create 1024;
    next_mfn = first_mfn;
    allocated = 0;
    dirty = Hashtbl.create 64;
    last_dirty = -1;
    cow = Hashtbl.create 4;
  }

let mfn_of_paddr paddr = paddr lsr page_shift
let offset_of_paddr paddr = paddr land page_mask
let paddr_of_mfn mfn = mfn lsl page_shift

let page_exists t mfn = Hashtbl.mem t.frames mfn

(* Mark [mfn] dirty and break any copy-on-write sharing. Must run
   before the frame's bytes are fetched on a write path. *)
let mark_dirty t mfn =
  if mfn <> t.last_dirty then begin
    if Hashtbl.length t.cow > 0 && Hashtbl.mem t.cow mfn then begin
      (match Hashtbl.find_opt t.frames mfn with
      | Some b -> Hashtbl.replace t.frames mfn (Bytes.copy b)
      | None -> ());
      Hashtbl.remove t.cow mfn
    end;
    Hashtbl.replace t.dirty mfn ();
    t.last_dirty <- mfn
  end

(* Frame backing [mfn] for reading: allocating a zeroed frame on first
   touch (allocation is a machine-state change, so it dirties). *)
let frame_ro t mfn =
  match Hashtbl.find_opt t.frames mfn with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\x00' in
    Hashtbl.add t.frames mfn b;
    t.allocated <- t.allocated + 1;
    if mfn <> t.last_dirty then begin
      Hashtbl.replace t.dirty mfn ();
      t.last_dirty <- mfn
    end;
    b

(** Frame backing [mfn], allocating a zeroed frame on first touch. The
    returned bytes may be written, so the frame is marked dirty and any
    copy-on-write sharing is broken first. *)
let frame t mfn =
  mark_dirty t mfn;
  frame_ro t mfn

(** Allocate a fresh frame and return its MFN. *)
let alloc_page t =
  let mfn = t.next_mfn in
  t.next_mfn <- t.next_mfn + 1;
  ignore (frame_ro t mfn);
  mfn

(** Allocate [n] physically contiguous frames whose first MFN is a
    multiple of [align] (in frames); returns that first MFN. Huge-page
    mappings need 512 contiguous frames on a 2M boundary. *)
let alloc_pages t ?(align = 1) n =
  let first = (t.next_mfn + align - 1) / align * align in
  t.next_mfn <- first + n;
  for i = 0 to n - 1 do
    ignore (frame_ro t (first + i))
  done;
  first

let allocated_pages t = t.allocated

(** MFNs whose contents differ between two memories, including frames
    present in only one of them, sorted ascending. Empty = identical
    contents (a frame of zeroes and an absent frame count as different:
    allocation state is part of the machine state). *)
let diff a b =
  let differing = ref [] in
  Hashtbl.iter
    (fun mfn fa ->
      match Hashtbl.find_opt b.frames mfn with
      | Some fb -> if not (Bytes.equal fa fb) then differing := mfn :: !differing
      | None -> differing := mfn :: !differing)
    a.frames;
  Hashtbl.iter
    (fun mfn _ ->
      if not (Hashtbl.mem a.frames mfn) then differing := mfn :: !differing)
    b.frames;
  List.sort_uniq compare !differing

let read8 t paddr =
  Char.code (Bytes.get (frame_ro t (mfn_of_paddr paddr)) (offset_of_paddr paddr))

let write8 t paddr v =
  let mfn = mfn_of_paddr paddr in
  mark_dirty t mfn;
  Bytes.set (frame_ro t mfn) (offset_of_paddr paddr) (Char.chr (v land 0xFF))

(* Multi-byte accesses use the fast within-page path when possible and a
   byte loop when the access straddles a frame boundary. *)
let read_n t paddr n =
  let off = offset_of_paddr paddr in
  if off + n <= page_size then begin
    let b = frame_ro t (mfn_of_paddr paddr) in
    match n with
    | 1 -> Int64.of_int (Char.code (Bytes.get b off))
    | 2 -> Int64.of_int (Bytes.get_uint16_le b off)
    | 4 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le b off)) 0xFFFFFFFFL
    | 8 -> Bytes.get_int64_le b off
    | _ -> Ptl_util.W64.of_bytes n (fun i -> Char.code (Bytes.get b (off + i)))
  end
  else Ptl_util.W64.of_bytes n (fun i -> read8 t (paddr + i))

let write_n t paddr n v =
  let off = offset_of_paddr paddr in
  if off + n <= page_size then begin
    let mfn = mfn_of_paddr paddr in
    mark_dirty t mfn;
    let b = frame_ro t mfn in
    match n with
    | 1 -> Bytes.set b off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    | 2 -> Bytes.set_uint16_le b off (Int64.to_int (Int64.logand v 0xFFFFL))
    | 4 -> Bytes.set_int32_le b off (Int64.to_int32 v)
    | 8 -> Bytes.set_int64_le b off v
    | _ ->
      for i = 0 to n - 1 do
        Bytes.set b (off + i) (Char.chr (Ptl_util.W64.byte v i))
      done
  end
  else
    for i = 0 to n - 1 do
      write8 t (paddr + i) (Ptl_util.W64.byte v i)
    done

let read16 t paddr = Int64.to_int (read_n t paddr 2)
let read32 t paddr = read_n t paddr 4
let read64 t paddr = read_n t paddr 8
let write16 t paddr v = write_n t paddr 2 (Int64.of_int v)
let write32 t paddr v = write_n t paddr 4 v
let write64 t paddr v = write_n t paddr 8 v

(** Sized access in terms of {!Ptl_util.W64.size}. *)
let read_sized t paddr size = read_n t paddr (Ptl_util.W64.bytes_of_size size)
let write_sized t paddr size v = write_n t paddr (Ptl_util.W64.bytes_of_size size) v

(** Copy a string into physical memory at [paddr]. *)
let write_string t paddr s =
  String.iteri (fun i c -> write8 t (paddr + i) (Char.code c)) s

(** Read [n] bytes starting at [paddr]. *)
let read_string t paddr n = String.init n (fun i -> Char.chr (read8 t (paddr + i)))

(** Deep copy (for domain checkpointing): every frame is materialized
    privately, so the copy is safe to share read-only across domains. *)
let copy t =
  let frames = Hashtbl.create (Hashtbl.length t.frames) in
  Hashtbl.iter (fun mfn b -> Hashtbl.add frames mfn (Bytes.copy b)) t.frames;
  {
    frames;
    next_mfn = t.next_mfn;
    allocated = t.allocated;
    dirty = Hashtbl.copy t.dirty;
    last_dirty = t.last_dirty;
    cow = Hashtbl.create 4;
  }

(** Restore [t] to the state captured in [snapshot] (in place, so existing
    references to [t] stay valid). Every restored frame counts as dirty:
    the restore itself rewrote the machine state, so a later delta
    against an older base must include it. *)
let restore t ~snapshot =
  Hashtbl.reset t.frames;
  Hashtbl.reset t.cow;
  Hashtbl.reset t.dirty;
  t.last_dirty <- -1;
  Hashtbl.iter
    (fun mfn b ->
      Hashtbl.add t.frames mfn (Bytes.copy b);
      Hashtbl.replace t.dirty mfn ())
    snapshot.frames;
  t.next_mfn <- snapshot.next_mfn;
  t.allocated <- snapshot.allocated

(* ---- delta checkpointing ---- *)

(** Forget the dirty set: subsequent {!delta}s are relative to the state
    at this call (typically right after a base image is captured). *)
let clear_dirty t =
  Hashtbl.reset t.dirty;
  t.last_dirty <- -1

(** Pages written or allocated since {!clear_dirty}. *)
let dirty_count t = Hashtbl.length t.dirty

(** The pages written or allocated since {!clear_dirty} plus the
    allocator state — everything needed to rebuild this memory from the
    base image the dirty set is relative to. Page contents are deep
    copies, so the delta stays valid while execution continues. *)
type delta = {
  d_pages : (int * Bytes.t) array;  (* sorted by MFN *)
  d_next_mfn : int;
  d_allocated : int;
}

let delta t =
  let pages =
    Hashtbl.fold
      (fun mfn () acc ->
        match Hashtbl.find_opt t.frames mfn with
        | Some b -> (mfn, Bytes.copy b) :: acc
        | None -> acc)
      t.dirty []
  in
  let d_pages = Array.of_list pages in
  Array.sort (fun (a, _) (b, _) -> compare a b) d_pages;
  { d_pages; d_next_mfn = t.next_mfn; d_allocated = t.allocated }

let delta_pages d = Array.length d.d_pages

(** Serialized size of a delta, counting page payloads only (the
    honest apples-to-apples number against [allocated_pages x
    page_size] for a full image). *)
let delta_bytes d = Array.length d.d_pages * page_size

(** Overlay [d] onto [t] (typically a fresh {!clone_cow} of the base
    image [d] was captured against): dirty page contents replace the
    base's, and the allocator state advances to the capture point. Page
    bytes are copied in, so [d] may be shared across workers. *)
let apply_delta t d =
  Array.iter
    (fun (mfn, b) ->
      (match Hashtbl.find_opt t.frames mfn with
      | Some _ -> ()
      | None -> t.allocated <- t.allocated + 1);
      Hashtbl.replace t.frames mfn (Bytes.copy b);
      Hashtbl.remove t.cow mfn;
      Hashtbl.replace t.dirty mfn ())
    d.d_pages;
  t.next_mfn <- d.d_next_mfn;
  (* allocation only grows, so the capture-point count is authoritative *)
  t.allocated <- d.d_allocated;
  t.last_dirty <- -1

(** A memory whose frames share bytes with [base], copied privately on
    first write. [base] must not be mutated afterwards (deep {!copy}
    images and deserialized images qualify); the clone never writes
    through the sharing, so one base may back any number of clones on
    any number of domains. *)
let clone_cow base =
  let n = Hashtbl.length base.frames in
  let frames = Hashtbl.create (max 16 n) in
  let cow = Hashtbl.create (max 16 n) in
  Hashtbl.iter
    (fun mfn b ->
      Hashtbl.add frames mfn b;
      Hashtbl.replace cow mfn ())
    base.frames;
  {
    frames;
    next_mfn = base.next_mfn;
    allocated = base.allocated;
    dirty = Hashtbl.create 64;
    last_dirty = -1;
    cow;
  }
