(** Translation lookaside buffers.

    Set-associative, LRU-replaced, with an optional second level and an
    optional page-directory-entry (PDE) cache — the K8 structures the paper
    identifies as the cause of its Table 1 DTLB discrepancy (PTLsim modeled
    only a 32-entry L1 TLB; the real K8 adds a 1024-entry 4-way L2 TLB and
    a 24-entry PDE cache that short-circuits page walks). Both
    configurations are constructible here so the experiment harness can
    reproduce that row of Table 1 and the `ablate-tlb` bench. *)

type entry = {
  vpn : int64;
  mfn : int;  (* 4K frame; for a huge entry the 2M region's base frame *)
  writable : bool;
  user : bool;
  nx : bool;
  huge : bool;  (* entry spans 2M (a PS-set PDE mapping) *)
}

(* Huge entries are tagged with the 2M frame number plus a high marker
   bit. Real virtual page numbers fit in 36 bits (48-bit VA, 12-bit
   pages), so the marker can never collide with a 4K tag, and both page
   sizes share the level arrays — the unified L1/L2 structure of the
   K8. *)
let huge_tag_bit = Int64.shift_left 1L 62
let tag_is_huge tag = Int64.logand tag huge_tag_bit <> 0L

(** Base virtual address covered by a tag (2M- or 4K-aligned). *)
let vaddr_of_tag tag =
  if tag_is_huge tag then
    Int64.shift_left (Int64.logxor tag huge_tag_bit) Pagetable.huge_shift
  else Int64.shift_left tag Phys_mem.page_shift

(** One set-associative translation array. *)
type level = {
  sets : int;
  ways : int;
  tags : int64 array array;  (* [set].(way) = vpn, or -1L for invalid *)
  data : entry option array array;
  lru : int array array;  (* larger = more recently used *)
  mutable tick : int;
}

let make_level ~entries ~ways =
  if entries mod ways <> 0 then invalid_arg "Tlb: entries/ways";
  let sets = entries / ways in
  if sets < 1 then invalid_arg "Tlb: too few entries";
  {
    sets;
    ways;
    tags = Array.init sets (fun _ -> Array.make ways (-1L));
    data = Array.init sets (fun _ -> Array.make ways None);
    lru = Array.init sets (fun _ -> Array.make ways 0);
    tick = 0;
  }

let set_of level vpn = Int64.to_int (Int64.unsigned_rem vpn (Int64.of_int level.sets))

let level_lookup level vpn =
  let s = set_of level vpn in
  let rec go w =
    if w >= level.ways then None
    else if level.tags.(s).(w) = vpn then begin
      level.tick <- level.tick + 1;
      level.lru.(s).(w) <- level.tick;
      level.data.(s).(w)
    end
    else go (w + 1)
  in
  go 0

let level_insert level vpn entry =
  let s = set_of level vpn in
  (* Reuse a matching or invalid way, else evict the LRU way. *)
  let victim = ref 0 in
  let best = ref max_int in
  (try
     for w = 0 to level.ways - 1 do
       if level.tags.(s).(w) = vpn || level.tags.(s).(w) = -1L then begin
         victim := w;
         raise Exit
       end;
       if level.lru.(s).(w) < !best then begin
         best := level.lru.(s).(w);
         victim := w
       end
     done
   with Exit -> ());
  level.tick <- level.tick + 1;
  level.tags.(s).(!victim) <- vpn;
  level.data.(s).(!victim) <- Some entry;
  level.lru.(s).(!victim) <- level.tick

let level_flush level =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) (-1L)) level.tags;
  Array.iter (fun row -> Array.fill row 0 (Array.length row) None) level.data

let level_flush_page level vpn =
  let s = set_of level vpn in
  for w = 0 to level.ways - 1 do
    if level.tags.(s).(w) = vpn then begin
      level.tags.(s).(w) <- -1L;
      level.data.(s).(w) <- None
    end
  done

type config = {
  l1_entries : int;
  l1_ways : int;
  l2 : (int * int) option;  (* entries, ways *)
  pde_entries : int;  (* 0 = no PDE cache *)
}

(** PTLsim's configuration in the paper's §5 experiment: a single 32-entry
    L1 TLB. *)
let ptlsim_config = { l1_entries = 32; l1_ways = 32; l2 = None; pde_entries = 0 }

(** The real K8's two-level TLB with PDE cache (paper §5). *)
let k8_config =
  { l1_entries = 32; l1_ways = 32; l2 = Some (1024, 4); pde_entries = 24 }

type t = {
  name : string;  (* trace tag, e.g. "dtlb" *)
  l1 : level;
  l2 : level option;
  (* PDE cache: maps the upper 27 VPN bits to the level-1 table, cutting a
     4-load walk to 1 load. Modeled as a tiny fully-associative level. *)
  pde : level option;
}

let create ?(name = "tlb") config =
  {
    name;
    l1 = make_level ~entries:config.l1_entries ~ways:config.l1_ways;
    l2 =
      Option.map (fun (entries, ways) -> make_level ~entries ~ways) config.l2;
    pde =
      (if config.pde_entries > 0 then
         Some (make_level ~entries:config.pde_entries ~ways:config.pde_entries)
       else None);
  }

let vpn_of_vaddr vaddr = Int64.shift_right_logical vaddr Phys_mem.page_shift

let huge_tag_of_vaddr vaddr =
  Int64.logor huge_tag_bit
    (Int64.shift_right_logical vaddr Pagetable.huge_shift)

(** The tag an entry is (or would be) filed under for [vaddr]. *)
let tag_of_entry e vaddr =
  if e.huge then huge_tag_of_vaddr vaddr else vpn_of_vaddr vaddr

(** Build a TLB entry from a successful walk. Huge translations store the
    2M base frame so one entry covers the whole region. *)
let entry_of_walk (tr : Pagetable.translation) =
  {
    vpn = 0L;
    mfn =
      (if tr.Pagetable.huge then
         tr.Pagetable.mfn land lnot (Pagetable.huge_pages - 1)
       else tr.Pagetable.mfn);
    writable = tr.Pagetable.writable;
    user = tr.Pagetable.user;
    nx = tr.Pagetable.nx;
    huge = tr.Pagetable.huge;
  }

(** Physical address of [vaddr] under [e] (valid for both page sizes). *)
let paddr_of e vaddr =
  if e.huge then
    Phys_mem.paddr_of_mfn e.mfn
    + Int64.to_int (Int64.logand vaddr (Int64.of_int Pagetable.huge_mask))
  else
    Phys_mem.paddr_of_mfn e.mfn
    + Int64.to_int (Int64.logand vaddr (Int64.of_int Phys_mem.page_mask))

(** Result of a lookup: where the translation was found. *)
type hit = L1_hit of entry | L2_hit of entry | Tlb_miss

let lookup_raw t vaddr =
  let vpn = vpn_of_vaddr vaddr in
  let hvpn = huge_tag_of_vaddr vaddr in
  let probe lvl =
    match level_lookup lvl vpn with
    | Some _ as h -> h
    | None -> level_lookup lvl hvpn
  in
  match probe t.l1 with
  | Some e -> L1_hit e
  | None ->
    (match t.l2 with
    | None -> Tlb_miss
    | Some l2 ->
      (match probe l2 with
      | Some e ->
        (* Promote into L1 under the page-size-appropriate tag. *)
        level_insert t.l1 (if e.huge then hvpn else vpn) e;
        L2_hit e
      | None -> Tlb_miss))

(** [lookup] minus the trace events: same LRU updates and L2-to-L1
    promotion, nothing recorded. The functional-warming translation path
    of the sampling supervisor uses this so fast-forward phases leave no
    footprint in the measured event stream. *)
let lookup_quiet = lookup_raw

let lookup t vaddr =
  let hit = lookup_raw t vaddr in
  (if !Ptl_trace.Trace.on then
     match hit with
     | L1_hit _ ->
       Ptl_trace.Trace.emit ~info:vaddr ~slot:1 ~tag:t.name Ptl_trace.Trace.Tlb_hit
     | L2_hit _ ->
       Ptl_trace.Trace.emit ~info:vaddr ~slot:2 ~tag:t.name Ptl_trace.Trace.Tlb_hit
     | Tlb_miss ->
       Ptl_trace.Trace.emit ~info:vaddr ~tag:t.name Ptl_trace.Trace.Tlb_miss);
  hit

(** Install a translation after a walk fills it. *)
let insert t vaddr entry =
  let tag = tag_of_entry entry vaddr in
  level_insert t.l1 tag entry;
  Option.iter (fun l2 -> level_insert l2 tag entry) t.l2;
  (* Remember the upper levels of the walk in the PDE cache. *)
  Option.iter
    (fun pde ->
      let upper = Int64.shift_right_logical (vpn_of_vaddr vaddr) 9 in
      level_insert pde upper { entry with vpn = upper })
    t.pde

(** Number of page-walk memory loads needed on a miss: 4 without a PDE
    cache, 1 when the PDE cache covers the upper levels. *)
let walk_loads t vaddr =
  match t.pde with
  | None -> Pagetable.levels
  | Some pde ->
    let upper = Int64.shift_right_logical (vpn_of_vaddr vaddr) 9 in
    (match level_lookup pde upper with Some _ -> 1 | None -> Pagetable.levels)

(** Flush everything (CR3 reload). *)
let flush t =
  level_flush t.l1;
  Option.iter level_flush t.l2;
  Option.iter level_flush t.pde

(** Flush one page (invlpg): drops both the 4K entry for [vaddr] and any
    huge entry covering it. *)
let flush_page t vaddr =
  let vpn = vpn_of_vaddr vaddr in
  let hvpn = huge_tag_of_vaddr vaddr in
  level_flush_page t.l1 vpn;
  level_flush_page t.l1 hvpn;
  Option.iter
    (fun l2 ->
      level_flush_page l2 vpn;
      level_flush_page l2 hvpn)
    t.l2

(* ---------- checkpointing (sampled-simulation parallel workers) ---------- *)

type level_snapshot = {
  ls_tags : int64 array array;
  ls_data : entry option array array;
  ls_lru : int array array;
  ls_tick : int;
}

(** Deep copy of every level's tag/entry/LRU arrays and recency tick.
    Entries are immutable records, so sharing them is safe. *)
type snapshot = {
  sn_l1 : level_snapshot;
  sn_l2 : level_snapshot option;
  sn_pde : level_snapshot option;
}

let level_snapshot lvl =
  {
    ls_tags = Array.map Array.copy lvl.tags;
    ls_data = Array.map Array.copy lvl.data;
    ls_lru = Array.map Array.copy lvl.lru;
    ls_tick = lvl.tick;
  }

let level_restore lvl s =
  if Array.length s.ls_tags <> lvl.sets then
    invalid_arg "Tlb.restore: geometry mismatch";
  for i = 0 to lvl.sets - 1 do
    Array.blit s.ls_tags.(i) 0 lvl.tags.(i) 0 lvl.ways;
    Array.blit s.ls_data.(i) 0 lvl.data.(i) 0 lvl.ways;
    Array.blit s.ls_lru.(i) 0 lvl.lru.(i) 0 lvl.ways
  done;
  lvl.tick <- s.ls_tick

let snapshot t =
  {
    sn_l1 = level_snapshot t.l1;
    sn_l2 = Option.map level_snapshot t.l2;
    sn_pde = Option.map level_snapshot t.pde;
  }

let level_fits lvl s =
  Array.length s.ls_tags = lvl.sets
  && Array.for_all (fun tags -> Array.length tags = lvl.ways) s.ls_tags

(** Whether [snapshot] came from a TLB of this configuration (same
    per-level geometry, same levels present) — the precondition of
    {!restore}. *)
let fits t snapshot =
  level_fits t.l1 snapshot.sn_l1
  && (match (t.l2, snapshot.sn_l2) with
     | Some lvl, Some s -> level_fits lvl s
     | None, None -> true
     | _ -> false)
  &&
  match (t.pde, snapshot.sn_pde) with
  | Some lvl, Some s -> level_fits lvl s
  | None, None -> true
  | _ -> false

let restore t ~snapshot =
  level_restore t.l1 snapshot.sn_l1;
  (match (t.l2, snapshot.sn_l2) with
  | Some lvl, Some s -> level_restore lvl s
  | None, None -> ()
  | _ -> invalid_arg "Tlb.restore: l2 presence mismatch");
  match (t.pde, snapshot.sn_pde) with
  | Some lvl, Some s -> level_restore lvl s
  | None, None -> ()
  | _ -> invalid_arg "Tlb.restore: pde presence mismatch"

let level_diff name lvl s out =
  let note fmt = Printf.ksprintf (fun str -> out := str :: !out) fmt in
  if Array.length s.ls_tags <> lvl.sets then
    note "%s: snapshot geometry mismatch" name
  else begin
    for set = 0 to lvl.sets - 1 do
      for w = 0 to lvl.ways - 1 do
        if lvl.tags.(set).(w) <> s.ls_tags.(set).(w) then
          note "%s set %d way %d: vpn %#Lx vs %#Lx" name set w
            lvl.tags.(set).(w)
            s.ls_tags.(set).(w)
        else begin
          if lvl.data.(set).(w) <> s.ls_data.(set).(w) then
            note "%s set %d way %d: entry differs" name set w;
          if lvl.lru.(set).(w) <> s.ls_lru.(set).(w) then
            note "%s set %d way %d: lru %d vs %d" name set w
              lvl.lru.(set).(w)
              s.ls_lru.(set).(w)
        end
      done
    done;
    if lvl.tick <> s.ls_tick then
      note "%s: tick %d vs %d" name lvl.tick s.ls_tick
  end

(** Compare the live TLB state against a snapshot (tags, entries, LRU
    recency, ticks, every level); returns one line per mismatch. *)
let diff t snapshot =
  let out = ref [] in
  level_diff (t.name ^ ".l1") t.l1 snapshot.sn_l1 out;
  (match (t.l2, snapshot.sn_l2) with
  | Some lvl, Some s -> level_diff (t.name ^ ".l2") lvl s out
  | None, None -> ()
  | _ -> out := (t.name ^ ".l2: presence mismatch") :: !out);
  (match (t.pde, snapshot.sn_pde) with
  | Some lvl, Some s -> level_diff (t.name ^ ".pde") lvl s out
  | None, None -> ()
  | _ -> out := (t.name ^ ".pde: presence mismatch") :: !out);
  List.rev !out

(* ---------- guard inspection hooks ---------- *)

let level_check name lvl =
  let violation = ref None in
  let note fmt = Printf.ksprintf (fun s -> if !violation = None then violation := Some s) fmt in
  for s = 0 to lvl.sets - 1 do
    let seen = Hashtbl.create 8 in
    for w = 0 to lvl.ways - 1 do
      let tag = lvl.tags.(s).(w) in
      if tag <> -1L then begin
        if Hashtbl.mem seen tag then note "%s set %d: duplicate vpn %#Lx" name s tag;
        Hashtbl.replace seen tag ();
        if lvl.data.(s).(w) = None then
          note "%s set %d way %d: valid tag %#Lx with no entry" name s w tag;
        if Int64.to_int (Int64.unsigned_rem tag (Int64.of_int lvl.sets)) <> s then
          note "%s set %d: vpn %#Lx indexed into the wrong set" name s tag;
        if lvl.lru.(s).(w) > lvl.tick then
          note "%s set %d: lru stamp %d from the future (tick %d)" name s
            lvl.lru.(s).(w) lvl.tick
      end
      else if lvl.data.(s).(w) <> None then
        note "%s set %d way %d: invalid tag with a live entry" name s w
    done
  done;
  !violation

(** Internal tag/entry/LRU consistency of every level. Returns a
    violation description, or None. *)
let check t =
  match level_check (t.name ^ ".l1") t.l1 with
  | Some _ as v -> v
  | None ->
    (match Option.map (level_check (t.name ^ ".l2")) t.l2 with
    | Some (Some _ as v) -> v
    | _ -> Option.join (Option.map (level_check (t.name ^ ".pde")) t.pde))

(** All valid L1/L2 translations as (vpn, entry) pairs — the vpn comes
    from the tag array (the entry's own [vpn] field is not meaningful for
    leaf translations). Used by the guard's TLB↔pagetable agreement
    check. *)
let entries t =
  let out = ref [] in
  let level lvl =
    for s = 0 to lvl.sets - 1 do
      for w = 0 to lvl.ways - 1 do
        match lvl.data.(s).(w) with
        | Some e when lvl.tags.(s).(w) <> -1L -> out := (lvl.tags.(s).(w), e) :: !out
        | _ -> ()
      done
    done
  in
  level t.l1;
  Option.iter level t.l2;
  !out
