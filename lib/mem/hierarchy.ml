(** The per-core cache hierarchy: L1 I/D, unified L2, optional unified L3,
    miss buffers (MSHRs) and an optional next-line prefetcher.

    This composes {!Cache} arrays into the default PTLsim data cache
    hierarchy (paper §2.2: L1 D, L1 I, unified L2, unified L3, DTLB and
    ITLB, with movement of lines through miss buffers). Accesses return a
    latency in cycles; outstanding misses are tracked in an MSHR table so
    overlapping misses to the same line merge instead of paying the full
    memory latency twice (non-blocking cache behaviour the out-of-order
    core depends on). *)

module Stats = Ptl_stats.Statstree

type config = {
  l1d : Cache.config;
  l1i : Cache.config;
  l2 : Cache.config;
  l3 : Cache.config option;
  mem_latency : int;
  mshrs : int;
  prefetch_next_line : bool;
}

(** The paper's §5 configuration of PTLsim-as-K8: 64 KB 2-way L1 D and I,
    1 MB 16-way L2 10 cycles away, no L3, memory 112 cycles away, no
    prefetch (PTLsim had none — one source of its Table 1 L1-miss delta). *)
let k8_ptlsim =
  {
    l1d = Cache.k8_l1d;
    l1i = Cache.k8_l1i;
    l2 = Cache.k8_l2;
    l3 = None;
    mem_latency = 112;
    mshrs = 8;
    prefetch_next_line = false;
  }

(** The reference-silicon configuration: same geometry plus the K8's
    hardware prefetcher. *)
let k8_silicon = { k8_ptlsim with prefetch_next_line = true }

type t = {
  config : config;
  l1d : Cache.t;
  l1i : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t option;
  (* line paddr -> cycle at which the fill completes *)
  mshr : (int, int) Hashtbl.t;
  loads : Stats.counter;
  stores : Stats.counter;
  ifetches : Stats.counter;
  prefetches : Stats.counter;
  mshr_merges : Stats.counter;
  (* Optional extra latency charged on misses that must consult other
     cores (installed by the multicore coherence layer). *)
  mutable remote_penalty : paddr:int -> write:bool -> int;
  (* Upgrade penalty on write hits to lines other cores may share. *)
  mutable remote_write_hit : paddr:int -> int;
}

let create ?(prefix = "mem") stats config =
  {
    config;
    l1d = Cache.create ~stats_prefix:prefix stats config.l1d;
    l1i = Cache.create ~stats_prefix:prefix stats config.l1i;
    l2 = Cache.create ~stats_prefix:prefix stats config.l2;
    l3 = Option.map (fun c -> Cache.create ~stats_prefix:prefix stats c) config.l3;
    mshr = Hashtbl.create 64;
    loads = Stats.counter stats (prefix ^ ".loads");
    stores = Stats.counter stats (prefix ^ ".stores");
    ifetches = Stats.counter stats (prefix ^ ".ifetches");
    prefetches = Stats.counter stats (prefix ^ ".prefetches");
    mshr_merges = Stats.counter stats (prefix ^ ".mshr_merges");
    remote_penalty = (fun ~paddr:_ ~write:_ -> 0);
    remote_write_hit = (fun ~paddr:_ -> 0);
  }

let set_remote_penalty t f = t.remote_penalty <- f
let set_remote_write_hit t f = t.remote_write_hit <- f

let l1d t = t.l1d
let l1i t = t.l1i
let l2 t = t.l2

(* Drop completed MSHR entries. *)
let expire_mshrs t ~cycle =
  if Hashtbl.length t.mshr > 0 then begin
    let dead = Hashtbl.fold (fun line ready acc -> if ready <= cycle then line :: acc else acc) t.mshr [] in
    List.iter (Hashtbl.remove t.mshr) dead
  end

(* Latency to bring a line into the given L1 from below, filling lower
   levels on the way. *)
let miss_latency t ~write ~paddr =
  let l2_result = Cache.access t.l2 paddr ~write:false in
  let after_l2 =
    match l2_result with
    | Cache.Hit -> t.config.l2.latency
    | Cache.Miss _ ->
      (match t.l3 with
      | None -> t.config.l2.latency + t.config.mem_latency
      | Some l3 ->
        (match Cache.access l3 paddr ~write:false with
        | Cache.Hit -> t.config.l2.latency + Cache.latency l3
        | Cache.Miss _ ->
          t.config.l2.latency + Cache.latency l3 + t.config.mem_latency))
  in
  after_l2 + t.remote_penalty ~paddr ~write

let prefetch t paddr =
  if t.config.prefetch_next_line then begin
    let next = Cache.line_addr t.l1d paddr + t.config.l1d.line_size in
    if not (Cache.probe t.l2 next) then begin
      Stats.incr t.prefetches;
      if !Ptl_trace.Trace.on then
        Ptl_trace.Trace.emit ~info:(Int64.of_int next) ~tag:"next-line"
          Ptl_trace.Trace.Prefetch;
      (* The K8 prefetcher fills into L2; L1D still takes the (cheap)
         miss but the line is close by. *)
      Cache.fill t.l2 next
    end
  end

(* ---------- functional warming (sampled simulation) ---------- *)

(* Mirror of [miss_latency]'s fill path with no latency and no counters:
   on an L1 miss the line is brought in through L2 (and L3 when present),
   updating tags/LRU at every level it passes. *)
let warm_miss t ~paddr ~l1 ~write =
  if not (Cache.probe t.l2 paddr) then
    Option.iter (fun l3 -> Cache.warm l3 paddr ~write:false) t.l3;
  Cache.warm t.l2 paddr ~write:false;
  Cache.warm l1 paddr ~write

let warm_data t ~paddr ~write =
  if Cache.probe t.l1d paddr then Cache.warm t.l1d paddr ~write
  else begin
    warm_miss t ~paddr ~l1:t.l1d ~write;
    (* keep the prefetcher's L2 footprint warm too, silently *)
    if t.config.prefetch_next_line then begin
      let next = Cache.line_addr t.l1d paddr + t.config.l1d.Cache.line_size in
      if not (Cache.probe t.l2 next) then Cache.fill t.l2 next
    end
  end

(** Functional warming: touch the hierarchy as [load]/[store]/[ifetch]
    would, updating tags, LRU and dirty state only — no latency, no MSHR
    traffic, no statistics, no trace events. *)
let warm_load t ~paddr = warm_data t ~paddr ~write:false

let warm_store t ~paddr = warm_data t ~paddr ~write:true

let warm_ifetch t ~paddr =
  if Cache.probe t.l1i paddr then Cache.warm t.l1i paddr ~write:false
  else warm_miss t ~paddr ~l1:t.l1i ~write:false

let data_access t ~cycle ~paddr ~write =
  expire_mshrs t ~cycle;
  let line = Cache.line_addr t.l1d paddr in
  match Cache.access t.l1d paddr ~write with
  | Cache.Hit ->
    t.config.l1d.latency + if write then t.remote_write_hit ~paddr else 0
  | Cache.Miss _ ->
    (match Hashtbl.find_opt t.mshr line with
    | Some ready when ready > cycle ->
      (* Merge with the outstanding miss. *)
      Stats.incr t.mshr_merges;
      if !Ptl_trace.Trace.on then
        Ptl_trace.Trace.emit ~info:(Int64.of_int paddr) ~tag:"mshr-merge"
          Ptl_trace.Trace.Cache_miss;
      ready - cycle
    | _ ->
      let extra =
        (* A full MSHR file delays the new miss until the earliest
           outstanding fill returns. *)
        if Hashtbl.length t.mshr >= t.config.mshrs then begin
          let earliest = Hashtbl.fold (fun _ r acc -> min r acc) t.mshr max_int in
          max 0 (earliest - cycle)
        end
        else 0
      in
      let lat = t.config.l1d.latency + extra + miss_latency t ~write ~paddr in
      Hashtbl.replace t.mshr line (cycle + lat);
      prefetch t paddr;
      lat)

(** Timed data load; returns latency in cycles. *)
let load t ~cycle ~paddr =
  Stats.incr t.loads;
  data_access t ~cycle ~paddr ~write:false

(** Timed data store (write-allocate, write-back); returns latency. *)
let store t ~cycle ~paddr =
  Stats.incr t.stores;
  data_access t ~cycle ~paddr ~write:true

(** Timed instruction fetch; returns latency. *)
let ifetch t ~cycle ~paddr =
  expire_mshrs t ~cycle;
  Stats.incr t.ifetches;
  match Cache.access t.l1i paddr ~write:false with
  | Cache.Hit -> t.config.l1i.latency
  | Cache.Miss _ -> t.config.l1i.latency + miss_latency t ~write:false ~paddr

(** Invalidate a line everywhere (coherence, SMC handling). *)
let invalidate_line t paddr =
  ignore (Cache.invalidate t.l1d paddr);
  ignore (Cache.invalidate t.l1i paddr);
  ignore (Cache.invalidate t.l2 paddr);
  Option.iter (fun l3 -> ignore (Cache.invalidate l3 paddr)) t.l3

(* ---------- checkpointing (sampled-simulation parallel workers) ---------- *)

(** Checkpoint of every cache level plus the MSHR table. The coherence
    callbacks ([remote_penalty] / [remote_write_hit]) are installation
    state, not contents, and stay with the live hierarchy. *)
type snapshot = {
  sn_l1d : Cache.snapshot;
  sn_l1i : Cache.snapshot;
  sn_l2 : Cache.snapshot;
  sn_l3 : Cache.snapshot option;
  sn_mshr : (int * int) list;  (* (line, ready-cycle), sorted by line *)
}

let snapshot t =
  {
    sn_l1d = Cache.snapshot t.l1d;
    sn_l1i = Cache.snapshot t.l1i;
    sn_l2 = Cache.snapshot t.l2;
    sn_l3 = Option.map Cache.snapshot t.l3;
    sn_mshr =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.mshr []);
  }

(** Whether [snapshot] came from a hierarchy of this geometry (every
    cache fits, same levels present) — the precondition of {!restore}. *)
let fits t snapshot =
  Cache.fits t.l1d snapshot.sn_l1d
  && Cache.fits t.l1i snapshot.sn_l1i
  && Cache.fits t.l2 snapshot.sn_l2
  &&
  match (t.l3, snapshot.sn_l3) with
  | Some l3, Some s -> Cache.fits l3 s
  | None, None -> true
  | _ -> false

let restore t ~snapshot =
  Cache.restore t.l1d ~snapshot:snapshot.sn_l1d;
  Cache.restore t.l1i ~snapshot:snapshot.sn_l1i;
  Cache.restore t.l2 ~snapshot:snapshot.sn_l2;
  (match (t.l3, snapshot.sn_l3) with
  | Some l3, Some s -> Cache.restore l3 ~snapshot:s
  | None, None -> ()
  | _ -> invalid_arg "Hierarchy.restore: l3 presence mismatch");
  Hashtbl.reset t.mshr;
  List.iter (fun (k, v) -> Hashtbl.replace t.mshr k v) snapshot.sn_mshr

(** Compare the live hierarchy against a snapshot; returns one line per
    mismatch across every cache level and the MSHR table. *)
let diff t snapshot =
  let mshr_live =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.mshr [])
  in
  Cache.diff t.l1d snapshot.sn_l1d
  @ Cache.diff t.l1i snapshot.sn_l1i
  @ Cache.diff t.l2 snapshot.sn_l2
  @ (match (t.l3, snapshot.sn_l3) with
    | Some l3, Some s -> Cache.diff l3 s
    | None, None -> []
    | _ -> [ "L3: presence mismatch" ])
  @
  if mshr_live <> snapshot.sn_mshr then
    [
      Printf.sprintf "mshr: %d live entries vs %d in snapshot"
        (List.length mshr_live)
        (List.length snapshot.sn_mshr);
    ]
  else []

(* ---------- guard inspection hooks ---------- *)

let mshr_occupancy t = Hashtbl.length t.mshr

(** MSHR-leak check: a fill whose completion cycle lies beyond any
    latency the hierarchy can legitimately produce (worst-case miss chain
    through every level plus full-MSHR queueing and a generous coherence
    allowance) was inserted by a bug and will never expire. Completed
    entries awaiting lazy expiry are fine. Returns a violation, or None. *)
let mshr_check t ~cycle =
  let worst_single =
    t.config.l1d.Cache.latency + t.config.l2.Cache.latency
    + (match t.config.l3 with Some c -> c.Cache.latency | None -> 0)
    + t.config.mem_latency
  in
  (* remote_penalty (coherence) adds an unknown but bounded cost *)
  let bound = (t.config.mshrs + 2) * (worst_single + 1024) in
  Hashtbl.fold
    (fun line ready acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if ready > cycle + bound then
          Some
            (Printf.sprintf
               "MSHR for line %#x completes at cycle %d, %d cycles out (bound %d): leaked entry"
               line ready (ready - cycle) bound)
        else None)
    t.mshr None

(** Structural consistency of every cache level plus the MSHR table. *)
let check t ~cycle =
  let ( <|> ) a b = match a with Some _ -> a | None -> b () in
  Cache.check t.l1d
  <|> (fun () -> Cache.check t.l1i)
  <|> (fun () -> Cache.check t.l2)
  <|> (fun () -> match t.l3 with Some l3 -> Cache.check l3 | None -> None)
  <|> (fun () -> mshr_check t ~cycle)

(** Flush all levels (the paper's -perfctr option flushes all CPU caches
    before switching to native mode). *)
let flush t =
  Cache.flush_all t.l1d;
  Cache.flush_all t.l1i;
  Cache.flush_all t.l2;
  Option.iter Cache.flush_all t.l3;
  Hashtbl.reset t.mshr
