(** Guest physical memory: a sparse set of 4 KiB machine frames (MFNs).

    Like Xen, frames have arbitrary non-contiguous machine frame numbers
    (paper §3). Physical addresses are OCaml [int]s; multi-byte accesses
    are little-endian and may cross frame boundaries. *)

type t

val page_shift : int
val page_size : int
val page_mask : int

val create : ?first_mfn:int -> unit -> t

val mfn_of_paddr : int -> int
val offset_of_paddr : int -> int
val paddr_of_mfn : int -> int

val page_exists : t -> int -> bool

(** Frame backing an MFN, allocating a zeroed frame on first touch. The
    returned bytes may be written, so the frame counts as dirty and any
    copy-on-write sharing is broken first. *)
val frame : t -> int -> Bytes.t

(** Allocate a fresh frame; returns its MFN. *)
val alloc_page : t -> int

(** Allocate [n] physically contiguous frames whose first MFN is a
    multiple of [align] (in frames, default 1); returns that first MFN.
    Huge-page mappings need 512 contiguous frames on a 2M boundary. *)
val alloc_pages : t -> ?align:int -> int -> int

val allocated_pages : t -> int

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit
val read16 : t -> int -> int
val read32 : t -> int -> int64
val read64 : t -> int -> int64
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int64 -> unit
val write64 : t -> int -> int64 -> unit

(** Sized access in terms of {!Ptl_util.W64.size}. *)
val read_sized : t -> int -> Ptl_util.W64.size -> int64

val write_sized : t -> int -> Ptl_util.W64.size -> int64 -> unit

val write_string : t -> int -> string -> unit
val read_string : t -> int -> int -> string

(** Deep copy, for domain checkpointing. *)
val copy : t -> t

(** Restore in place from a snapshot (existing references stay valid). *)
val restore : t -> snapshot:t -> unit

(** MFNs whose contents (or allocation state) differ between two
    memories, sorted ascending; empty = identical. The checkpoint
    round-trip harness uses this to detect dirtied pages. *)
val diff : t -> t -> int list

(** {2 Delta checkpointing}

    Pages written or allocated since the last {!clear_dirty} are
    tracked, so a checkpoint can serialize only the footprint an
    interval touched. {!clone_cow} shares a base image copy-on-write so
    replay workers rebuild a private memory in O(frames) pointer copies
    instead of O(bytes). *)

(** Forget the dirty set: subsequent {!delta}s are relative to now. *)
val clear_dirty : t -> unit

(** Pages written or allocated since {!clear_dirty}. *)
val dirty_count : t -> int

(** Dirty pages (deep-copied, sorted by MFN) plus allocator state:
    everything needed to rebuild this memory from the base image the
    dirty set is relative to. *)
type delta

val delta : t -> delta

(** Number of pages a delta carries. *)
val delta_pages : delta -> int

(** Serialized size of a delta's page payloads ([delta_pages] x
    [page_size]); compare against [allocated_pages x page_size]. *)
val delta_bytes : delta -> int

(** Overlay a delta onto a clone/restore of the base it was captured
    against. Page bytes are copied in, so one delta may be shared. *)
val apply_delta : t -> delta -> unit

(** A memory sharing the base's frame bytes copy-on-write. The base
    must not be mutated afterwards; clones never write through the
    sharing, so one base may back any number of clones on any number
    of domains. *)
val clone_cow : t -> t
