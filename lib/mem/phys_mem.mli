(** Guest physical memory: a sparse set of 4 KiB machine frames (MFNs).

    Like Xen, frames have arbitrary non-contiguous machine frame numbers
    (paper §3). Physical addresses are OCaml [int]s; multi-byte accesses
    are little-endian and may cross frame boundaries. *)

type t

val page_shift : int
val page_size : int
val page_mask : int

val create : ?first_mfn:int -> unit -> t

val mfn_of_paddr : int -> int
val offset_of_paddr : int -> int
val paddr_of_mfn : int -> int

val page_exists : t -> int -> bool

(** Frame backing an MFN, allocating a zeroed frame on first touch. *)
val frame : t -> int -> Bytes.t

(** Allocate a fresh frame; returns its MFN. *)
val alloc_page : t -> int

val allocated_pages : t -> int

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit
val read16 : t -> int -> int
val read32 : t -> int -> int64
val read64 : t -> int -> int64
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int64 -> unit
val write64 : t -> int -> int64 -> unit

(** Sized access in terms of {!Ptl_util.W64.size}. *)
val read_sized : t -> int -> Ptl_util.W64.size -> int64

val write_sized : t -> int -> Ptl_util.W64.size -> int64 -> unit

val write_string : t -> int -> string -> unit
val read_string : t -> int -> int -> string

(** Deep copy, for domain checkpointing. *)
val copy : t -> t

(** Restore in place from a snapshot (existing references stay valid). *)
val restore : t -> snapshot:t -> unit

(** MFNs whose contents (or allocation state) differ between two
    memories, sorted ascending; empty = identical. The checkpoint
    round-trip harness uses this to detect dirtied pages. *)
val diff : t -> t -> int list
