(** Set-associative cache tag array with banking, write-back dirty state
    and pluggable replacement — the building block of {!Hierarchy}. Data
    lives in guest physical memory; this models hits, misses, evictions,
    dirty write-backs and bank conflicts (the K8's 8-banked pseudo
    dual-ported L1D, paper §5). *)

type replacement = Lru | Random_repl | Fifo

type config = {
  name : string;
  size_bytes : int;
  line_size : int;
  ways : int;
  latency : int;  (* hit latency, cycles *)
  banks : int;  (* 1 = no banking *)
  replacement : replacement;
}

(** The paper's §5 geometries: 64 KB 2-way L1D (8 banks) / L1I, 1 MB
    16-way L2. *)
val k8_l1d : config

val k8_l1i : config
val k8_l2 : config

type t

val create : ?stats_prefix:string -> Ptl_stats.Statstree.t -> config -> t

val line_addr : t -> int -> int

(** Bank touched by an access (banks divide lines along 8-byte words). *)
val bank_of : t -> int -> int

(** Non-destructive presence test. *)
val probe : t -> int -> bool

type access_result =
  | Hit
  | Miss of { writeback : int option }
      (** allocated; the dirty victim's address needs writing back *)

(** Access (allocating on miss); [write] marks the line dirty. *)
val access : t -> int -> write:bool -> access_result

(** Functional warming: update tag/LRU/dirty state as [access] would
    (allocating on a miss) with no statistics and no trace events. Used
    by the sampled-simulation fast-forward phase. *)
val warm : t -> int -> write:bool -> unit

(** Insert a line without counting an access (prefetch fill). *)
val fill : t -> int -> unit

(** Invalidate a line; true when it was present and dirty. *)
val invalidate : t -> int -> bool

val flush_all : t -> unit

(** Valid-line count (occupancy invariants in tests). *)
val occupancy : t -> int

(** Configured hit latency (cycles). *)
val latency : t -> int

val hits : t -> int
val misses : t -> int
val accesses : t -> int

(** Guard hook: tag/LRU structural consistency (no duplicate tags in a
    set, no garbage tags, no recency stamp from the future). Returns a
    violation description, or [None] when consistent. *)
val check : t -> string option

(** Planted-corruption hook for guard self-tests: duplicate the tag of
    the first valid line into another way of its set. Returns false when
    no set holds a valid line with a free second way. *)
val debug_duplicate_tag : t -> bool

(** Checkpoint of the tag array, replacement tick and replacement-RNG
    cursor (statistics stay with the owning tree). Restores are in
    place; [diff] lists every mismatch between the live state and a
    snapshot (empty = exact), for the checkpoint round-trip harness. *)
type snapshot

val snapshot : t -> snapshot

(** Whether a snapshot came from a cache of this geometry (same set
    count and associativity): the precondition of {!restore}. Replays
    under a different geometry (design-space sweep legs) check this and
    start the cache cold instead. *)
val fits : t -> snapshot -> bool

val restore : t -> snapshot:snapshot -> unit
val diff : t -> snapshot -> string list

(** Planted corruption for round-trip self-tests: refresh the LRU stamp
    of the first valid line. False when the cache is empty. *)
val debug_touch_lru : t -> bool
