(** Translation lookaside buffers: set-associative, LRU, with an optional
    second level and an optional page-directory-entry (PDE) cache — the
    K8 structures behind the paper's Table 1 DTLB row. *)

type entry = {
  vpn : int64;
  mfn : int;  (* 4K frame; for a huge entry the 2M region's base frame *)
  writable : bool;
  user : bool;
  nx : bool;
  huge : bool;  (* entry spans 2M (a PS-set PDE mapping) *)
}

(** Whether a tag (as returned by {!entries}) names a 2M entry. *)
val tag_is_huge : int64 -> bool

(** Base virtual address covered by a tag (2M- or 4K-aligned). *)
val vaddr_of_tag : int64 -> int64

(** Build a TLB entry from a successful walk; huge translations store the
    2M base frame so one entry covers the whole region. *)
val entry_of_walk : Pagetable.translation -> entry

(** Physical address of a virtual address under an entry (both page
    sizes). *)
val paddr_of : entry -> int64 -> int

type config = {
  l1_entries : int;
  l1_ways : int;
  l2 : (int * int) option;  (* entries, ways *)
  pde_entries : int;  (* 0 = no PDE cache *)
}

(** The paper's §5 PTLsim configuration: one 32-entry TLB level. *)
val ptlsim_config : config

(** The real K8: 32-entry L1 + 1024-entry 4-way L2 + 24-entry PDE cache. *)
val k8_config : config

type t

(** [name] tags this TLB's trace events (e.g. "dtlb", "itlb"). *)
val create : ?name:string -> config -> t

type hit = L1_hit of entry | L2_hit of entry | Tlb_miss

(** Look up a virtual address; L2 hits promote into L1. *)
val lookup : t -> int64 -> hit

(** [lookup] minus the trace events: same LRU updates and L2-to-L1
    promotion, nothing recorded — the sampled-simulation warming path. *)
val lookup_quiet : t -> int64 -> hit

(** Install a translation after a page walk (fills every level and the
    PDE cache). *)
val insert : t -> int64 -> entry -> unit

(** Memory loads a page walk for this address needs: 4 without a PDE
    cache, 1 when the PDE cache covers the upper levels. *)
val walk_loads : t -> int64 -> int

(** Flush everything (CR3 reload; the K8 predates ASIDs). *)
val flush : t -> unit

(** Flush one page (invlpg): drops both the 4K entry and any huge entry
    covering the address. *)
val flush_page : t -> int64 -> unit

(** Guard hook: internal tag/entry/LRU consistency of every level.
    Returns a violation description, or [None] when consistent. *)
val check : t -> string option

(** Guard hook: all valid L1/L2 translations as (vpn, entry) pairs, the
    vpn taken from the tag arrays. *)
val entries : t -> (int64 * entry) list

(** Checkpoint of every level's tags, entries, LRU recency and ticks.
    Restores are in place; [diff] lists every mismatch between the live
    state and a snapshot (empty = exact). *)
type snapshot

val snapshot : t -> snapshot

(** Whether a snapshot came from a TLB of this configuration (same
    per-level geometry, same levels present): the precondition of
    {!restore}. *)
val fits : t -> snapshot -> bool

val restore : t -> snapshot:snapshot -> unit
val diff : t -> snapshot -> string list
