(** The 4-level x86-64 page table tree and its hardware walker.

    Page table entries are 8 bytes with the real x86-64 bit layout
    (present, writable, user, accessed, dirty, NX). The walker performs the
    chain of four dependent loads the paper describes (§4.3) and reports
    the physical address of every PTE it touched so the timing model can
    inject those loads into the cache hierarchy. Accessed/dirty tracking
    bits are set during the walk, exactly as x86 microcode/hardware does
    (§2.1). *)

let pte_p = 0x1L (* present *)
let pte_w = 0x2L (* writable *)
let pte_u = 0x4L (* user-accessible *)
let pte_a = 0x20L (* accessed *)
let pte_d = 0x40L (* dirty *)
let pte_ps = 0x80L (* page size: set on a PDE => 2M leaf *)
let pte_nx = Int64.min_int (* bit 63: no-execute *)

let levels = 4
let index_bits = 9

(** 2M huge pages span [huge_pages] 4K frames. *)
let huge_pages = 1 lsl index_bits
let huge_shift = Phys_mem.page_shift + index_bits
let huge_size = 1 lsl huge_shift
let huge_mask = huge_size - 1

(** Virtual address bits 12..47 are translated; the rest must be the sign
    extension of bit 47 (canonical form). *)
let canonical vaddr =
  let top = Int64.shift_right vaddr 47 in
  top = 0L || top = -1L

let vpn_index vaddr level =
  (* level 3 = root (bits 39-47) ... level 0 = leaf (bits 12-20) *)
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical vaddr (Phys_mem.page_shift + (index_bits * level)))
       0x1FFL)

let make_pte ~mfn ~writable ~user ~nx =
  let v = Int64.of_int (mfn lsl Phys_mem.page_shift) in
  let v = Int64.logor v pte_p in
  let v = if writable then Int64.logor v pte_w else v in
  let v = if user then Int64.logor v pte_u else v in
  if nx then Int64.logor v pte_nx else v

let pte_mfn pte =
  Int64.to_int (Int64.shift_right_logical pte Phys_mem.page_shift) land 0xFFFFFFFFF

(** Why a translation failed; mirrors the x86 page-fault error code. *)
type fault = {
  fault_vaddr : int64;
  not_present : bool;  (* true: P bit clear; false: protection violation *)
  on_write : bool;
  on_user : bool;
  on_exec : bool;
}

(** A successful translation. [pte_addrs] lists the physical address of each
    PTE read, root first — the walker's dependent loads (four for a 4K
    mapping, three when a 2M PDE leaf short-circuits the walk). [mfn] is
    always the exact 4K frame for [vaddr]; for a huge mapping it is the 2M
    region's base frame plus the level-0 index, so {!to_paddr} and every
    existing consumer keep working unchanged. [huge] records that the
    mapping came from a PS-set PDE. *)
type translation = {
  mfn : int;
  writable : bool;
  user : bool;
  nx : bool;
  huge : bool;
  pte_addrs : int list;
}

(** Walk the tree rooted at [cr3_mfn] for [vaddr]. [write]/[user]/[exec]
    describe the access being performed (used for permission checks and
    dirty-bit setting). When [set_ad] is true (hardware behaviour) the
    accessed bits of every level and the dirty bit of the leaf are updated
    in memory — but only once the walk has fully succeeded: a walk that
    faults at any level leaves all A/D bits untouched, matching x86
    hardware, which commits the TLB fill and the A/D updates together. *)
let walk mem ~cr3_mfn ~vaddr ~write ~user ~exec ?(set_ad = true) () :
    (translation, fault) result =
  let fail ~not_present =
    Error { fault_vaddr = vaddr; not_present; on_write = write; on_user = user; on_exec = exec }
  in
  if not (canonical vaddr) then fail ~not_present:true
  else begin
    (* (pte_addr, pte, is_leaf) for every level visited, deferred so A/D
       writes only happen on a successful walk. *)
    let visited = ref [] in
    let apply_ad () =
      if set_ad then
        List.iter
          (fun (pte_addr, pte, is_leaf) ->
            let pte' = Int64.logor pte pte_a in
            let pte' =
              if is_leaf && write then Int64.logor pte' pte_d else pte'
            in
            if pte' <> pte then Phys_mem.write64 mem pte_addr pte')
          !visited
    in
    let finish ~leaf_pte ~base_mfn ~huge pte_addrs =
      apply_ad ();
      {
        mfn = (if huge then base_mfn lor vpn_index vaddr 0 else base_mfn);
        writable = Int64.logand leaf_pte pte_w <> 0L;
        user = Int64.logand leaf_pte pte_u <> 0L;
        nx = Int64.logand leaf_pte pte_nx <> 0L;
        huge;
        pte_addrs = List.rev pte_addrs;
      }
    in
    let rec go level table_mfn pte_addrs =
      let idx = vpn_index vaddr level in
      let pte_addr = Phys_mem.paddr_of_mfn table_mfn + (8 * idx) in
      let pte = Phys_mem.read64 mem pte_addr in
      let pte_addrs = pte_addr :: pte_addrs in
      if Int64.logand pte pte_p = 0L then fail ~not_present:true
      else begin
        let leaf = level = 0 || (level = 1 && Int64.logand pte pte_ps <> 0L) in
        (* Permission bits are checked at every level on x86-64. *)
        if write && Int64.logand pte pte_w = 0L then fail ~not_present:false
        else if user && Int64.logand pte pte_u = 0L then fail ~not_present:false
        else if exec && leaf && Int64.logand pte pte_nx <> 0L then
          fail ~not_present:false
        else begin
          visited := (pte_addr, pte, leaf) :: !visited;
          if leaf then
            Ok (finish ~leaf_pte:pte ~base_mfn:(pte_mfn pte) ~huge:(level = 1) pte_addrs)
          else go (level - 1) (pte_mfn pte) pte_addrs
        end
      end
    in
    go (levels - 1) cr3_mfn []
  end

(** Install a translation [vaddr -> mfn], allocating intermediate tables
    with [alloc] as needed (the guest-kernel/hypervisor MMU-update path).
    With [huge], [vaddr] must be 2M-aligned and [mfn] the 2M-aligned base
    frame of 512 contiguous 4K frames: the walk stops at level 1 and a
    PS-set PDE leaf is written. *)
let map mem ~cr3_mfn ~vaddr ~mfn ~writable ~user ?(nx = false) ?(huge = false)
    ~alloc () =
  if not (canonical vaddr) then invalid_arg "Pagetable.map: non-canonical";
  if huge then begin
    if Int64.logand vaddr (Int64.of_int huge_mask) <> 0L then
      invalid_arg "Pagetable.map: huge vaddr not 2M-aligned";
    if mfn land (huge_pages - 1) <> 0 then
      invalid_arg "Pagetable.map: huge mfn not 2M-aligned"
  end;
  let leaf_level = if huge then 1 else 0 in
  let rec go level table_mfn =
    let idx = vpn_index vaddr level in
    let pte_addr = Phys_mem.paddr_of_mfn table_mfn + (8 * idx) in
    if level = leaf_level then
      let pte = make_pte ~mfn ~writable ~user ~nx in
      Phys_mem.write64 mem pte_addr
        (if huge then Int64.logor pte pte_ps else pte)
    else begin
      let pte = Phys_mem.read64 mem pte_addr in
      let next_mfn =
        if Int64.logand pte pte_p = 0L then begin
          let fresh = alloc () in
          (* Intermediate entries are writable+user; the leaf governs. *)
          Phys_mem.write64 mem pte_addr
            (make_pte ~mfn:fresh ~writable:true ~user:true ~nx:false);
          fresh
        end
        else pte_mfn pte
      in
      go (level - 1) next_mfn
    end
  in
  go (levels - 1) cr3_mfn

(** Remove the translation for [vaddr] (leaf only; tables are not freed).
    A PS-set PDE covering [vaddr] is cleared, dropping the whole 2M
    mapping. *)
let unmap mem ~cr3_mfn ~vaddr =
  let rec go level table_mfn =
    let idx = vpn_index vaddr level in
    let pte_addr = Phys_mem.paddr_of_mfn table_mfn + (8 * idx) in
    let pte = Phys_mem.read64 mem pte_addr in
    if Int64.logand pte pte_p = 0L then ()
    else if level = 0 || (level = 1 && Int64.logand pte pte_ps <> 0L) then
      Phys_mem.write64 mem pte_addr 0L
    else go (level - 1) (pte_mfn pte)
  in
  go (levels - 1) cr3_mfn

(** Read the raw PDE covering [vaddr] (level-1 entry), if the upper levels
    are present: [(pde_addr, pde)]. The VM layer's promote/split logic
    inspects and rewrites PDEs through this. *)
let pde_of mem ~cr3_mfn ~vaddr =
  let rec go level table_mfn =
    let idx = vpn_index vaddr level in
    let pte_addr = Phys_mem.paddr_of_mfn table_mfn + (8 * idx) in
    let pte = Phys_mem.read64 mem pte_addr in
    if level = 1 then Some (pte_addr, pte)
    else if Int64.logand pte pte_p = 0L then None
    else go (level - 1) (pte_mfn pte)
  in
  go (levels - 1) cr3_mfn

(** Raw leaf PTE for [vaddr]: [(pte_addr, pte, level)] where [level] is 0
    for a 4K leaf and 1 for a PS-set PDE. None when any level on the path
    is not present. The reclaim scanner reads and rewrites accessed bits
    through this without perturbing them the way a walk would. *)
let leaf_pte mem ~cr3_mfn ~vaddr =
  let rec go level table_mfn =
    let idx = vpn_index vaddr level in
    let pte_addr = Phys_mem.paddr_of_mfn table_mfn + (8 * idx) in
    let pte = Phys_mem.read64 mem pte_addr in
    if Int64.logand pte pte_p = 0L then None
    else if level = 0 || (level = 1 && Int64.logand pte pte_ps <> 0L) then
      Some (pte_addr, pte, level)
    else go (level - 1) (pte_mfn pte)
  in
  go (levels - 1) cr3_mfn

(** Read-only probe used by debuggers and the functional reference: no A/D
    updates, no permission checks beyond presence. *)
let probe mem ~cr3_mfn ~vaddr =
  match walk mem ~cr3_mfn ~vaddr ~write:false ~user:false ~exec:false ~set_ad:false () with
  | Ok tr -> Some tr.mfn
  | Error _ -> None

(** Translate a virtual address to physical, or a fault. *)
let to_paddr translation vaddr =
  Phys_mem.paddr_of_mfn translation.mfn + Int64.to_int (Int64.logand vaddr (Int64.of_int Phys_mem.page_mask))
