(* The optlsim command-line front end: boot the full-system rsync
   benchmark (or a synthetic compute workload) under a chosen core model
   and machine configuration, with PTLsim-style command lists.

     optlsim rsync --core ooo --machine k8 --files 24
     optlsim compute --commands "-core ooo -run -stopinsns 100k : -native"
     optlsim stats   # list core models and machine configs *)

open Ptlsim
open Cmdliner
module Trace = Ptl_trace.Trace

(* ---------- pipeline event tracing (--trace family) ---------- *)

type trace_opts = {
  t_on : bool;
  t_start : int option;  (* begin capture at this cycle *)
  t_stop : int option;  (* end of the capture window *)
  t_rip : string;  (* restrict to one instruction address, "" = all *)
  t_filter : string;  (* comma-separated event classes, "" = all *)
  t_buf : int;  (* ring capacity in events *)
  t_trigger : string;  (* immediate | cycle:N | mispredict *)
  t_out : string list;  (* sink specs: [format:]path *)
  t_stream : string;  (* incremental sink spec, "" = none *)
  t_timeline : int;  (* per-uop timeline rows to print, 0 = off *)
}

let trace_requested o =
  o.t_on || o.t_out <> [] || o.t_stream <> "" || o.t_timeline > 0

(* A sink spec is [format:]path; the format defaults from the extension
   (.json -> chrome, .csv -> csv, else text). path "-" is stdout. *)
let parse_sink spec =
  match String.index_opt spec ':' with
  | Some i ->
    let f = String.sub spec 0 i in
    let p = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match f with
    | "text" | "chrome" | "csv" -> (f, p)
    | _ -> failwith ("unknown trace sink format in " ^ spec))
  | None ->
    let f =
      if Filename.check_suffix spec ".json" then "chrome"
      else if Filename.check_suffix spec ".csv" then "csv"
      else "text"
    in
    (f, spec)

(* the channel behind --trace-stream, owned here; the trace module only
   borrows it while the streaming sink is attached *)
let stream_channel : (string * out_channel) option ref = ref None

let setup_trace o =
  if trace_requested o then begin
    (* reject bad sink specs before burning cycles on the simulation *)
    List.iter (fun s -> ignore (parse_sink s)) o.t_out;
    let trigger =
      match String.lowercase_ascii o.t_trigger with
      | "" | "immediate" -> None
      | "mispredict" -> Some Trace.On_mispredict
      | "sample" -> Some Trace.On_sample
      | s when String.length s > 6 && String.sub s 0 6 = "cycle:" ->
        Some
          (Trace.At_cycle
             (int_of_string (String.sub s 6 (String.length s - 6))))
      | other -> failwith ("unknown --trace-trigger: " ^ other)
    in
    Trace.configure ~capacity:o.t_buf ?start_cycle:o.t_start
      ?stop_cycle:o.t_stop
      ?rip:(if o.t_rip = "" then None else Some (Int64.of_string o.t_rip))
      ~classes:(Trace.parse_classes o.t_filter)
      ?trigger ();
    if o.t_stream <> "" then begin
      let format, path = parse_sink o.t_stream in
      let fmt =
        match Trace.stream_format_of_name format with
        | Some f -> f
        | None -> failwith ("unknown trace stream format in " ^ o.t_stream)
      in
      let oc = if path = "-" then stdout else open_out path in
      (* the sink's finalizer owns channel teardown so every exit path —
         including the Sim_failure unwind — leaves a complete file *)
      Trace.stream_to
        ~on_stop:(fun () ->
          if path <> "-" then close_out oc else flush oc;
          stream_channel := None)
        fmt oc;
      stream_channel := Some (path, oc)
    end
  end

let write_sink spec =
  let format, path = parse_sink spec in
  let oc = if path = "-" then stdout else open_out path in
  (match format with
  | "text" -> Trace.dump_text oc
  | "chrome" -> Trace.dump_chrome oc
  | _ -> Trace.dump_csv oc);
  if path <> "-" then close_out oc else flush oc;
  Printf.printf "trace: wrote %s sink to %s\n" format path

let finish_trace o stats =
  if !Trace.on then begin
    (match !stream_channel with
    | Some (path, _) ->
      Trace.stream_stop () (* finalizes and closes via on_stop *);
      Printf.printf "trace: streamed %d events to %s\n" (Trace.captured ())
        path
    | None -> ());
    Printf.printf "trace: %d events in window (%d captured, %d lost to wraparound)\n"
      (Trace.length ()) (Trace.captured ()) (Trace.overwritten ());
    List.iter write_sink o.t_out;
    (* Cross-check: every committed x86 instruction emits exactly one
       tagged commit event, so with an unwrapped, unfiltered window the
       trace must agree with the counter tree. A restricted capture
       (window, trigger, rip or class filter) can never match, so skip. *)
    let unrestricted =
      o.t_start = None && o.t_stop = None && o.t_rip = "" && o.t_filter = ""
      && (match String.lowercase_ascii o.t_trigger with
         | "" | "immediate" -> true
         | _ -> false)
    in
    let counter = Statstree.get stats "ooo.commit.insns" in
    let commits = Trace.commits ~tag:"ooo" () in
    if counter > 0 && unrestricted then
      Printf.printf "trace: ooo commit events=%d vs ooo.commit.insns=%d%s\n"
        commits counter
        (if commits = counter then " (match)"
         else if Trace.overwritten () > 0 then " (window wrapped)"
         else " (MISMATCH)");
    if o.t_timeline > 0 then begin
      Printf.printf "trace: per-uop timelines (first %d):\n" o.t_timeline;
      Trace.render_timeline ~limit:o.t_timeline stdout
    end;
    Trace.disable ()
  end

let trace_term =
  let flag_on =
    Arg.(value & flag & info [ "trace" ] ~doc:"Enable pipeline event tracing.")
  in
  let start =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-start" ] ~docv:"CYCLE"
          ~doc:"Start capturing at the given cycle (PTLsim -startlog).")
  in
  let stop =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-stop" ] ~docv:"CYCLE" ~doc:"Stop capturing at the given cycle.")
  in
  let rip =
    Arg.(
      value & opt string ""
      & info [ "trace-rip" ] ~docv:"RIP"
          ~doc:"Only capture events for this instruction address (e.g. 0x401000).")
  in
  let filter =
    Arg.(
      value & opt string ""
      & info [ "trace-filter" ] ~docv:"CLASSES"
          ~doc:
            "Comma-separated event classes to capture: pipe, commit, cache, \
             tlb, bb, bpred. Default: all.")
  in
  let buf =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "trace-buf" ] ~docv:"EVENTS"
          ~doc:"Ring buffer capacity; older events are overwritten when full.")
  in
  let trigger =
    Arg.(
      value & opt string ""
      & info [ "trace-trigger" ] ~docv:"WHEN"
          ~doc:
            "When capture begins: immediate (default), cycle:N, mispredict, \
             or sample (the first measured sampling interval).")
  in
  let out =
    Arg.(
      value & opt_all string []
      & info [ "trace-out" ] ~docv:"[FMT:]PATH"
          ~doc:
            "Write the captured window to a sink: text:PATH, chrome:PATH \
             (Perfetto-loadable JSON), or csv:PATH. Repeatable; format \
             defaults from the extension; PATH - is stdout.")
  in
  let stream =
    Arg.(
      value & opt string ""
      & info [ "trace-stream" ] ~docv:"[FMT:]PATH"
          ~doc:
            "Also write every accepted event to PATH incrementally during \
             the run (text, csv, or chrome), so a crashed run still leaves \
             a usable trace and long traces survive ring wraparound. \
             Format defaults from the extension; PATH - is stdout.")
  in
  let timeline =
    Arg.(
      value
      & opt int 0 ~vopt:40
      & info [ "trace-timeline" ] ~docv:"ROWS"
          ~doc:"Print per-uop stage-by-stage timelines for up to ROWS uops.")
  in
  let mk t_on t_start t_stop t_rip t_filter t_buf t_trigger t_out t_stream
      t_timeline =
    {
      t_on;
      t_start;
      t_stop;
      t_rip;
      t_filter;
      t_buf;
      t_trigger;
      t_out;
      t_stream;
      t_timeline;
    }
  in
  Term.(
    const mk $ flag_on $ start $ stop $ rip $ filter $ buf $ trigger $ out
    $ stream $ timeline)

(* ---------- guard rails (--guard family) ---------- *)

(* Exit code for a simulator self-check failure (watchdog lockup or
   structural invariant violation): distinct from flag errors (1, or
   124 from cmdliner) and fuzz divergences (2). See README "Guard
   rails". *)
let exit_sim_failure = 3

(* Exit code for a degraded fleet result: the run terminated and
   printed a report, but one or more intervals were quarantined after
   repeated failures, so the estimates cover the surviving intervals
   only. See README "Failure modes & recovery". *)
let exit_degraded = 4

type guard_opts = {
  g_on : bool;
  g_interval : int;  (* invariant sweep every N core steps *)
  g_checkpoint_every : int;  (* cycles between snapshots, 0 = start only *)
  g_degrade : bool;  (* roll back + finish on the seq core on failure *)
  g_strict_tlb : bool;  (* TLB/PWC vs pagetable agreement (vm family) *)
}

let guard_requested g = g.g_on || g.g_degrade || g.g_strict_tlb

let guard_config g =
  {
    Guard.interval = max 1 g.g_interval;
    checkpoint_every = g.g_checkpoint_every;
    degrade = g.g_degrade;
    strict_tlb = g.g_strict_tlb;
  }

(* Install the guard supervisor on every core instance the domain
   builds (mode switches rebuild the core, so the wrap must be a
   standing decorator rather than a one-shot). *)
let install_guard g d =
  if guard_requested g then
    Domain.set_instance_wrap d (fun inst ->
        Guard.wrap ~config:(guard_config g) ~env:d.Domain.env
          ~ctx:d.Domain.ctx inst)

(* Contain a simulator self-check failure at the driver: render the
   diagnostic bundle once, exit with the documented code. Without this
   the typed fault would escape as an uncaught exception + backtrace. *)
let catch_sim_failure f =
  try f ()
  with Sim_failure.Sim_failure fail ->
    (* finalize the incremental trace sink first: the abnormal exit must
       not leave a truncated stream (a Chrome JSON missing its footer) *)
    (match !stream_channel with
    | Some (path, _) ->
      Trace.stream_stop ();
      Printf.eprintf "trace: stream to %s finalized after failure\n" path
    | None -> ());
    prerr_string (Sim_failure.render fail);
    Printf.eprintf
      "optlsim: simulator self-check failed (%s); exiting %d\n"
      fail.Sim_failure.subsystem exit_sim_failure;
    exit exit_sim_failure

let guard_term =
  let flag_on =
    Arg.(
      value & flag
      & info [ "guard" ]
          ~doc:
            "Enable guard rails: sampled structural invariant checks \
             (ROB/LSQ ordering, physical-register conservation, \
             issue-queue slot conservation, cache tag/LRU and MSHR \
             consistency, TLB consistency) plus periodic checkpoints. \
             Failures print a diagnostic bundle and exit 3.")
  in
  let interval =
    Arg.(
      value & opt int 64
      & info [ "guard-interval" ] ~docv:"STEPS"
          ~doc:"Run the invariant sweep every STEPS core steps (default 64).")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt int 1_000_000
      & info [ "guard-checkpoint-every" ] ~docv:"CYCLES"
          ~doc:
            "Cycles between rollback checkpoints (default 1000000); 0 \
             takes one checkpoint at simulation start only.")
  in
  let degrade =
    Arg.(
      value & flag
      & info [ "guard-degrade" ]
          ~doc:
            "On a self-check failure, roll back to the last checkpoint \
             and finish the run on the sequential reference core instead \
             of exiting (implies $(b,--guard)).")
  in
  let strict_tlb =
    Arg.(
      value & flag
      & info [ "guard-strict-tlb" ]
          ~doc:
            "Arm the vm invariant family on top of $(b,--guard): every \
             cached TLB entry (4K and 2M) and PWC upper-level entry must \
             agree with a fresh page-table walk. Catches stale \
             translations after reclaim, shootdown or promote/split \
             bugs; expensive, so it runs on a longer stride (implies \
             $(b,--guard)).")
  in
  let mk g_on g_interval g_checkpoint_every g_degrade g_strict_tlb =
    { g_on; g_interval; g_checkpoint_every; g_degrade; g_strict_tlb }
  in
  Term.(
    const mk $ flag_on $ interval $ checkpoint_every $ degrade $ strict_tlb)

(* ---------- sampled simulation (--sample family) ---------- *)

type sample_opts = {
  s_on : bool;
  s_period : int option;  (* instructions per ff+warmup+measure period *)
  s_ff : int option;  (* explicit fast-forward length (excludes period) *)
  s_warmup : int;
  s_measure : int;
  s_roi : bool;  (* gate on the guest's -startsample/-stopsample region *)
  s_jobs : int option;  (* checkpoint-parallel workers; None = serial *)
  s_offset : string;  (* interval placement: fixed | rand:SEED | stratified *)
}

let sample_requested s =
  s.s_on || s.s_period <> None || s.s_ff <> None || s.s_roi
  || s.s_jobs <> None || s.s_offset <> ""

(* Validate the --sample flag combination against the rest of the
   command line and derive the schedule + interval placement;
   None = not sampling. *)
let sample_schedule sample_opts guard_opts ~core ~commands =
  if not (sample_requested sample_opts) then None
  else begin
    if commands <> "-run" then begin
      prerr_endline
        "optlsim: --sample-* cannot be combined with --commands: the \
         sampling supervisor owns the run schedule (use --sample-roi with \
         guest -startsample/-stopsample ptlcalls to scope it)";
      exit 1
    end;
    let placement =
      match Sample.parse_placement sample_opts.s_offset with
      | Ok p -> p
      | Error msg ->
        prerr_endline ("optlsim: " ^ msg);
        exit 1
    in
    match
      Sample.check_flags ~core ~ff:sample_opts.s_ff
        ~period:sample_opts.s_period ~warmup:sample_opts.s_warmup
        ~measure:sample_opts.s_measure ~guard_degrade:guard_opts.g_degrade
        ~fuzz:false ()
    with
    | Error msg ->
      prerr_endline ("optlsim: " ^ msg);
      exit 1
    | Ok schedule -> Some (schedule, placement)
  end

(* Run the domain under the sampling supervisor and print its report
   (the sampled replacement for Domain.submit + Domain.run). With
   --sample-jobs the checkpoint-parallel engine replaces the serial
   supervisor (even at 1 job, so job counts are comparable). *)
let run_sampled sample_opts ~tracing ~schedule ~placement ~max_cycles d =
  catch_sim_failure (fun () ->
      let r =
        match sample_opts.s_jobs with
        | None ->
          Sample.run ~roi:sample_opts.s_roi ~placement ~max_cycles ~schedule d
        | Some jobs ->
          (* 0 = one replay worker per recommended host core *)
          let jobs =
            if jobs = 0 then Stdlib.Domain.recommended_domain_count ()
            else jobs
          in
          (match
             Sample.check_jobs ~jobs
               ~kernel:(d.Domain.kernel <> None)
               ~tracing ()
           with
          | Error msg ->
            prerr_endline ("optlsim: " ^ msg);
            exit 1
          | Ok () -> ());
          Sample.run_parallel ~roi:sample_opts.s_roi ~placement ~max_cycles
            ~jobs ~schedule d
      in
      Sample.report stdout r)

let sample_term =
  let flag_on =
    Arg.(
      value & flag
      & info [ "sample" ]
          ~doc:
            "Enable sampled simulation: repeat fast-forward (native, with \
             functional cache/TLB/predictor warming), warm-up (timed, \
             unmeasured) and measure (timed, measured) phases, and report \
             the aggregate CPI with a 95% confidence interval.")
  in
  let period =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-period" ] ~docv:"INSNS"
          ~doc:
            "Instructions per sampling period (fast-forward + warm-up + \
             measure; default 1000000). Implies $(b,--sample).")
  in
  let ff =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-ff" ] ~docv:"INSNS"
          ~doc:
            "Explicit fast-forward length per period (mutually exclusive \
             with $(b,--sample-period)). Implies $(b,--sample).")
  in
  let warmup =
    Arg.(
      value
      & opt int Sample.default_warmup
      & info [ "sample-warmup" ] ~docv:"INSNS"
          ~doc:
            "Timed but unmeasured instructions before each measured \
             interval (default 20000).")
  in
  let measure =
    Arg.(
      value
      & opt int Sample.default_measure
      & info [ "sample-measure" ] ~docv:"INSNS"
          ~doc:"Measured instructions per interval (default 30000).")
  in
  let roi =
    Arg.(
      value & flag
      & info [ "sample-roi" ]
          ~doc:
            "Only schedule sampling periods while the guest's \
             -startsample/-stopsample ptlcall region is open (fast-forward \
             and warming continue outside it). Implies $(b,--sample).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "sample-jobs" ] ~docv:"N"
          ~doc:
            "Checkpoint-parallel sampling: one native pass captures a full \
             checkpoint (architectural state + warmed caches, TLBs, \
             predictor) at each measured window, then N worker domains \
             replay the intervals on private state. The merged report is \
             bit-identical for any N; N = 0 auto-detects the host core \
             count. Needs a bare-machine workload ($(b,compute --bare)). \
             Implies $(b,--sample).")
  in
  let offset =
    Arg.(
      value & opt string ""
      & info [ "sample-offset" ] ~docv:"SPEC"
          ~doc:
            "Where each period's measured window sits: fixed (default, \
             window closes the period), rand:SEED (uniform random offset \
             per period, breaking phase aliasing), or stratified \
             (deterministic sweep across the period). Implies \
             $(b,--sample).")
  in
  let mk s_on s_period s_ff s_warmup s_measure s_roi s_jobs s_offset =
    { s_on; s_period; s_ff; s_warmup; s_measure; s_roi; s_jobs; s_offset }
  in
  Term.(
    const mk $ flag_on $ period $ ff $ warmup $ measure $ roi $ jobs $ offset)

let machine_of_name = function
  | "k8" | "k8-ptlsim" -> Config.k8_ptlsim
  | "k8-silicon" -> Config.k8_silicon
  | "tiny" -> Config.tiny
  | other -> failwith ("unknown machine config: " ^ other)

let print_summary d k =
  let st = d.Domain.env.Env.stats in
  Printf.printf "cycles (domain):      %d\n" (Statstree.get st "domain.cycles");
  Printf.printf "instructions:         %d\n" (Domain.insns d);
  Printf.printf "mode switches:        %d\n" (Statstree.get st "domain.mode_switches");
  let total = float_of_int (max 1 (Statstree.get st "domain.cycles")) in
  let pct p = 100.0 *. float_of_int (Statstree.get st p) /. total in
  Printf.printf "user/kernel/idle:     %.1f%% / %.1f%% / %.1f%%\n"
    (pct "domain.cycles_in_mode.user")
    (pct "domain.cycles_in_mode.kernel")
    (pct "domain.cycles_in_mode.idle");
  List.iter
    (fun p ->
      let v = Statstree.get st p in
      if v > 0 then Printf.printf "%-22s%d\n" (p ^ ":") v)
    [ "ooo.commit.insns"; "ooo.commit.uops"; "ooo.commit.mispredicts";
      "ooo.dcache.dtlb_misses"; "ooo.mem.L1D.misses"; "kernel.syscalls";
      "kernel.context_switches"; "kernel.packets"; "kernel.disk_reads";
      "guard.check_passes"; "guard.violations"; "guard.checkpoints";
      "guard.rollbacks"; "guard.degraded" ];
  (match k with
  | Some k ->
    Printf.printf "shutdown:             %b\n" (Kernel.is_shutdown k)
  | None -> ());
  Printf.printf "phase markers:        %s\n"
    (String.concat " "
       (List.map (fun (m, c) -> Printf.sprintf "%d@%d" m c) (Domain.markers d)))

let run_rsync trace_opts guard_opts sample_opts core machine files commands
    max_mcycles =
  let sampled = sample_schedule sample_opts guard_opts ~core ~commands in
  setup_trace trace_opts;
  let fileset = { Fileset.default with Fileset.nfiles = files } in
  let d, k =
    Ptlmon.launch
      {
        Ptlmon.default_spec with
        Ptlmon.programs = Rsync_progs.programs ();
        files = Fileset.generate fileset;
        machine_config = machine_of_name machine;
        core;
      }
  in
  install_guard guard_opts d;
  let max_cycles = max_mcycles * 1_000_000 in
  (match sampled with
  | Some (schedule, placement) ->
    run_sampled sample_opts ~tracing:(trace_requested trace_opts) ~schedule
      ~placement ~max_cycles d
  | None ->
    Domain.submit d commands;
    catch_sim_failure (fun () -> ignore (Domain.run ~max_cycles d)));
  Printf.printf "synchronized correctly: %b\n" (Rsync_bench.verify_sync k);
  print_summary d (Some k);
  finish_trace trace_opts d.Domain.env.Env.stats

(* The synthetic compute workload shared by the compute and capture
   subcommands: a pointer-chasing increment loop with a multiplicative
   PRNG, ending in hlt (bare) or a marker + exit syscall (kernel). *)
let compute_program ~iters ~bare =
  let g = Gasm.create () in
  Gasm.jmp g "main";
  Gasm.label g "main";
  Gasm.li g Gasm.rbp (if bare then Machine.heap_base else Abi.user_heap_base);
  Gasm.lii g Gasm.rcx iters;
  Gasm.label g "top";
  Gasm.ld g Gasm.rax ~base:Gasm.rbp ();
  Gasm.addi g Gasm.rax 1;
  Gasm.st g ~base:Gasm.rbp Gasm.rax ();
  Gasm.imuli g Gasm.rbx 1103515245;
  Gasm.addi g Gasm.rbx 12345;
  Gasm.dec g Gasm.rcx;
  Gasm.jne g "top";
  if bare then
    (* no kernel to receive syscalls: halt the VCPU to end the run *)
    Gasm.ins g Insn.Hlt
  else begin
    Gasm.sys_marker g 999;
    Gasm.sys_exit g 0
  end;
  Gasm.assemble g

let run_compute trace_opts guard_opts sample_opts core machine commands
    max_mcycles iters bare =
  let sampled = sample_schedule sample_opts guard_opts ~core ~commands in
  setup_trace trace_opts;
  let program = compute_program ~iters ~bare in
  let d, k =
    if bare then begin
      let m = Machine.create program in
      ( Domain.create ~core ~config:(machine_of_name machine) m.Machine.env
          m.Machine.ctx,
        None )
    end
    else begin
      let env = Env.create () in
      let ctx = Context.create ~vcpu_id:0 in
      let k = Kernel.create env ctx in
      Kernel.register_program k ~name:"init" program;
      Kernel.boot k;
      ( Domain.create ~kernel:k ~core ~config:(machine_of_name machine) env ctx,
        Some k )
    end
  in
  install_guard guard_opts d;
  let max_cycles = max_mcycles * 1_000_000 in
  (match sampled with
  | Some (schedule, placement) ->
    run_sampled sample_opts ~tracing:(trace_requested trace_opts) ~schedule
      ~placement ~max_cycles d
  | None ->
    Domain.submit d commands;
    catch_sim_failure (fun () -> ignore (Domain.run ~max_cycles d)));
  print_summary d k;
  finish_trace trace_opts d.Domain.env.Env.stats

(* ---------- virtual-memory scenarios (optlsim vm) ---------- *)

let vm_err msg =
  prerr_endline ("optlsim vm: " ^ msg);
  exit 1

(* TLB-hostile workloads under the lib/vm scenario axes: GUPS random
   updates or streaming sweeps, on a bare machine (optionally with a
   2M-page heap) or demand-paged under minios with the CLOCK reclaimer. *)
let run_vm trace_opts guard_opts core machine workload slots steps bytes
    passes hugepages pwc demand watermark batch max_mcycles =
  setup_trace trace_opts;
  let config =
    let c = machine_of_name machine in
    let c = if hugepages then { c with Config.tlb_hugepages = true } else c in
    match pwc with None -> c | Some n -> { c with Config.pwc_entries = n }
  in
  let d, k =
    if demand then begin
      if workload <> "gups" then
        vm_err
          "--demand currently supports the gups workload only (stream \
           targets the bare machine's high heap, which minios does not map)";
      let heap_bytes = Abi.user_heap_pages * 4096 in
      if slots * 8 > heap_bytes then
        vm_err
          (Printf.sprintf
             "--slots %d needs %d bytes but the minios user heap holds %d"
             slots (slots * 8) heap_bytes);
      let program =
        Microbench.gups ~base:Abi.user_code_base ~heap:Abi.user_heap_base
          ~user:true ~slots ~steps ()
      in
      let env = Env.create () in
      let ctx = Context.create ~vcpu_id:0 in
      let kc =
        {
          Kernel.default_config with
          Kernel.demand_paging = true;
          vm_watermark = watermark;
          vm_batch = batch;
        }
      in
      let k = Kernel.create ~config:kc env ctx in
      Kernel.register_program k ~name:"init" program;
      Kernel.boot k;
      (Domain.create ~kernel:k ~core ~config env ctx, Some k)
    end
    else begin
      let program, heap_pages =
        match workload with
        | "gups" ->
          (Microbench.gups ~slots ~steps (), max 1 ((slots * 8 + 4095) / 4096))
        | "stream" ->
          (Microbench.stream ~bytes ~passes, max 1 ((bytes + 4095) / 4096))
        | other -> vm_err ("unknown workload: " ^ other ^ " (gups, stream)")
      in
      let m = Machine.create ~heap_pages ~huge_heap:hugepages program in
      ( Domain.create ~core ~config:config m.Machine.env m.Machine.ctx,
        None )
    end
  in
  install_guard guard_opts d;
  let max_cycles = max_mcycles * 1_000_000 in
  Domain.submit d "-run";
  catch_sim_failure (fun () -> ignore (Domain.run ~max_cycles d));
  print_summary d k;
  let st = d.Domain.env.Env.stats in
  let insns = max 1 (Domain.insns d) in
  (* the timed cores register their TLBs under their own prefixes; sum
     so the line is right whichever model ran *)
  let g p = Statstree.get st ("ooo." ^ p) + Statstree.get st ("inorder." ^ p) in
  let dtlb_misses = g "dcache.dtlb_misses" in
  Printf.printf "dtlb MPKI:            %.2f (%d misses / %d accesses)\n"
    (1000.0 *. float_of_int dtlb_misses /. float_of_int insns)
    dtlb_misses (g "dcache.dtlb_accesses");
  List.iter
    (fun p ->
      let v = Statstree.get st p in
      if v > 0 then Printf.printf "%-22s%d\n" (p ^ ":") v)
    [ "vm.faults"; "vm.fills"; "vm.swap_ins"; "vm.swap_outs"; "vm.evictions";
      "vm.shootdowns"; "vm.promotions"; "vm.splits" ];
  finish_trace trace_opts st

(* ---------- differential fuzzing (optlsim fuzz) ---------- *)

let run_fuzz trace_opts guard_opts sample_opts core machine seed iters len
    classes report_dir inject no_oracle =
  let o = trace_opts in
  if sample_requested sample_opts then begin
    prerr_endline
      "optlsim fuzz: --sample-* cannot be combined with the fuzz \
       subcommand: fuzzing cosimulates every instruction on both engines, \
       so there is nothing to fast-forward";
    exit 1
  end;
  match
    Fuzz.check_flags ~iters ~len ~classes ~core ~inject
      ~guard_degrade:guard_opts.g_degrade ~trace_start:o.t_start
      ~trace_stop:o.t_stop ~trace_rip:o.t_rip ~trace_trigger:o.t_trigger
      ~trace_out:o.t_out ~trace_timeline:o.t_timeline ()
  with
  | Error msg ->
    prerr_endline ("optlsim fuzz: " ^ msg);
    exit 1
  | Ok () ->
    let classes = Fuzzgen.parse_classes classes in
    let config = machine_of_name machine in
    let inject_fn = Option.map (fun n -> Fuzz.flags_bug ~after:n) inject in
    let replay_extra =
      (match inject with
      | Some n -> Printf.sprintf " --fuzz-inject %d" n
      | None -> "")
      ^ if no_oracle then " --fuzz-no-oracle" else ""
    in
    (* An injected bug corrupts state between checkpoints, where later
       writes can mask it; per-instruction checkpoints pin it reliably. *)
    let check_every =
      if inject = None then Fuzz.default_check_every else 1
    in
    let trace_capacity = if o.t_buf = 1 lsl 20 then 4096 else o.t_buf in
    let progress iter divs =
      if (iter + 1) mod 100 = 0 then
        Printf.printf "fuzz: %d/%d iterations, %d divergences\n%!" (iter + 1)
          iters divs
    in
    (* Under --guard the supervisor rides along inside the cosim loop:
       invariant violations and watchdog lockups become shrinkable,
       reportable findings like any divergence. *)
    let guard =
      if guard_requested guard_opts then Some (guard_config guard_opts)
      else None
    in
    let s =
      Fuzz.run ~config ~core ?inject:inject_fn ?guard ~oracle:(not no_oracle)
        ~classes ~len ~check_every ~trace_capacity
        ~trace_classes:(Trace.parse_classes o.t_filter) ~replay_extra
        ~progress ~seed ~iters ()
    in
    Printf.printf
      "fuzz: seed %d, %d iterations, %d instructions generated, core %s vs \
       seq%s\n"
      s.Fuzz.s_seed s.Fuzz.s_iters s.Fuzz.s_gen_insns s.Fuzz.s_core
      (if no_oracle then "" else " vs oracle");
    if not no_oracle then begin
      Printf.printf "fuzz: %d programs cross-checked against the spec oracle\n"
        s.Fuzz.s_oracle_checked;
      if s.Fuzz.s_oracle_unsupported > 0 then
        Printf.printf
          "fuzz: WARNING: %d programs hit instructions with no spec row (run \
           optlsim conformance --coverage)\n"
          s.Fuzz.s_oracle_unsupported
    end;
    (match s.Fuzz.s_divergences with
    | [] -> Printf.printf "fuzz: no divergences\n"
    | ds ->
      Printf.printf "fuzz: %d divergence(s)\n" (List.length ds);
      (match report_dir with
      | Some dir ->
        List.iter
          (fun f -> Printf.printf "fuzz: wrote %s\n" f)
          (Fuzz.write_reports ~dir s)
      | None -> List.iter (fun d -> print_string d.Fuzz.d_report) ds);
      exit 2)

(* ---------- the sampling fleet (capture / serve / work / replay) ---------- *)

let fleet_err msg =
  prerr_endline ("optlsim: " ^ msg);
  exit 1

let fleet_log quiet = if quiet then fun _ -> () else Printf.eprintf "%s\n%!"

(* Per-interval guard wrapping for fleet replays: every worker wraps
   its private core instance, so a tripped invariant surfaces as a
   typed Sim_failure (quarantine + degraded report) instead of
   corrupting the merged estimates. --guard-degrade is refused here:
   silently finishing a window on the sequential core would change its
   measurements with no mark in the report. *)
let fleet_guard_wrap ~cmd g =
  if not (guard_requested g) then None
  else if g.g_degrade then
    fleet_err
      (Printf.sprintf
         "--guard-degrade cannot be combined with %s: degrading an \
          interval to the sequential core would silently change its \
          measurements; quarantine (exit %d) is the containment path"
         cmd exit_degraded)
  else
    Some
      (fun ~env ~ctx inst -> Guard.wrap ~config:(guard_config g) ~env ~ctx inst)

(* capture: one native master pass over the bare compute workload,
   journaled to a durable interval store record by record, so an
   interrupted capture resumes from the last valid checkpoint *)
let run_capture_cmd guard_opts sample_opts core machine iters max_mcycles
    store_dir resume =
  (match Fleet.check_capture ~store:store_dir ~jobs:sample_opts.s_jobs () with
  | Error msg -> fleet_err msg
  | Ok () -> ());
  let sample_opts = { sample_opts with s_on = true } in
  let schedule, placement =
    match sample_schedule sample_opts guard_opts ~core ~commands:"-run" with
    | Some sp -> sp
    | None -> assert false (* s_on forces sampling *)
  in
  let program = compute_program ~iters ~bare:true in
  let config = machine_of_name machine in
  (* the store key: what program ran, not how it was simulated *)
  let workload = Store.digest_value ("bare-compute", program, iters) in
  let placement_str =
    if sample_opts.s_offset = "" then "fixed" else sample_opts.s_offset
  in
  (* --resume: adopt the journal's longest valid prefix, but only if it
     was written by an identical capture — a journal from a different
     program, core, machine config, schedule or placement restarts
     fresh rather than splicing incompatible checkpoints together *)
  let partial =
    if not resume then None
    else
      match Store.scan_partial ~dir:store_dir with
      | Error e -> fleet_err (Store.error_to_string e)
      | Ok None ->
        Printf.eprintf "capture: nothing to resume in %s, starting fresh\n%!"
          store_dir;
        None
      | Ok (Some pt)
        when pt.Store.pt_workload <> workload
             || pt.Store.pt_core <> core
             || pt.Store.pt_config_digest <> Store.config_digest config
             || pt.Store.pt_schedule <> schedule
             || pt.Store.pt_placement <> placement_str ->
        Printf.eprintf
          "capture: journal in %s was written by a different capture \
           (workload/core/config/schedule/placement mismatch), starting \
           fresh\n%!"
          store_dir;
        None
      | Ok (Some pt) ->
        Printf.eprintf
          "capture: resuming from journaled interval %d (%d already on disk)\n%!"
          (pt.Store.pt_count - 1) pt.Store.pt_count;
        Some pt
  in
  let j =
    match
      Store.begin_capture ~dir:store_dir ~workload ~core ~schedule
        ~placement:placement_str ~config ?resume:partial ()
    with
    | Error e -> fleet_err (Store.error_to_string e)
    | Ok j -> j
  in
  let journal_err e =
    fleet_err ("capture journal: " ^ Store.error_to_string e)
  in
  let on_base b =
    match Store.journal_base j b with Ok () -> () | Error e -> journal_err e
  in
  let on_window (w : Sample.window) =
    match
      Store.journal_interval j ~index:w.Sample.w_index
        ~delta_bytes:w.Sample.w_delta_bytes ~full_bytes:w.Sample.w_full_bytes
        w.Sample.w_delta
    with
    | Ok () -> ()
    | Error e -> journal_err e
  in
  let rs =
    Option.map
      (fun pt ->
        {
          Sample.rs_base = pt.Store.pt_base;
          rs_last = pt.Store.pt_last;
          rs_count = pt.Store.pt_count;
          rs_delta_bytes = pt.Store.pt_delta_bytes;
          rs_full_bytes = pt.Store.pt_full_bytes;
        })
      partial
  in
  let m = Machine.create program in
  let d = Domain.create ~core ~config m.Machine.env m.Machine.ctx in
  let max_cycles = max_mcycles * 1_000_000 in
  let cr =
    catch_sim_failure (fun () ->
        Sample.run_capture ~roi:sample_opts.s_roi ~placement ~max_cycles
          ~on_base ~on_window ?resume:rs ~schedule d)
  in
  match
    Store.finish_capture j ~total_insns:cr.Sample.cr_insns
      ~total_cycles:cr.Sample.cr_cycles
  with
  | Error e -> fleet_err (Store.error_to_string e)
  | Ok st ->
    print_endline (Store.describe st);
    let mf = Store.manifest st in
    Printf.printf
      "capture: delta checkpoints carry %d page bytes vs %d for full \
       images (%.1fx smaller)\n"
      mf.Store.m_delta_bytes mf.Store.m_full_bytes
      (float_of_int mf.Store.m_full_bytes
      /. float_of_int (max 1 mf.Store.m_delta_bytes))

(* serve: hand the store's intervals to worker processes, merge, report.
   stdout carries exactly the Sample.report so it can be byte-compared
   with a serial --sample run; progress goes to stderr. *)
let run_serve_cmd store_dir socket lease_timeout max_failures quiet =
  (match
     Fleet.check_serve ~store:store_dir ~socket ~lease_timeout ~max_failures ()
   with
  | Error msg -> fleet_err msg
  | Ok () -> ());
  match Store.open_store ~dir:store_dir with
  | Error e -> fleet_err (Store.error_to_string e)
  | Ok store ->
    let log = fleet_log quiet in
    log (Store.describe store);
    let sv =
      catch_sim_failure (fun () ->
          Fleet.serve ~lease_timeout ~max_failures ~log ~socket store)
    in
    let mf = Store.manifest store in
    Sample.report_degraded stdout ~count:mf.Store.m_count
      ~quarantined:sv.Fleet.sv_quarantined sv.Fleet.sv_result;
    flush stdout;
    Printf.eprintf
      "fleet: %d worker(s), %d interval(s) replayed, %d from cache, %d \
       lease(s) re-queued, %d quarantined\n%!"
      sv.Fleet.sv_workers sv.Fleet.sv_replayed sv.Fleet.sv_cached
      sv.Fleet.sv_requeued
      (List.length sv.Fleet.sv_quarantined);
    if sv.Fleet.sv_quarantined <> [] then exit exit_degraded

(* work: one worker process leasing intervals from a server *)
let run_work_cmd guard_opts connect retries chaos quiet =
  (match Fleet.check_work ~connect () with
  | Error msg -> fleet_err msg
  | Ok () -> ());
  let wrap = fleet_guard_wrap ~cmd:"work" guard_opts in
  (match chaos with
  | "" -> ()
  | spec -> (
    match Chaos.parse spec with
    | Error msg -> fleet_err ("--chaos " ^ msg)
    | Ok rules -> Chaos.arm rules));
  match
    catch_sim_failure (fun () ->
        Fleet.work ~retries ~log:(fleet_log quiet) ?wrap ~connect ())
  with
  | exception Chaos.Killed point ->
    Printf.eprintf "work: chaos killed at %s\n%!" point;
    exit 1
  | Error msg -> fleet_err msg
  | Ok n -> Printf.printf "work: replayed %d interval(s)\n" n

(* replay: consume a store in-process (no server), cache-aware *)
let run_replay_cmd guard_opts store_dir jobs quiet =
  (match Fleet.check_replay ~store:store_dir ~jobs () with
  | Error msg -> fleet_err msg
  | Ok () -> ());
  let wrap = fleet_guard_wrap ~cmd:"replay" guard_opts in
  let jobs = if jobs = 0 then Stdlib.Domain.recommended_domain_count () else jobs in
  match Store.open_store ~dir:store_dir with
  | Error e -> fleet_err (Store.error_to_string e)
  | Ok store ->
    let log = fleet_log quiet in
    log (Store.describe store);
    (match
       catch_sim_failure (fun () -> Fleet.replay ~jobs ~log ?wrap store)
     with
    | Error e -> fleet_err (Store.error_to_string e)
    | Ok rp ->
      let mf = Store.manifest store in
      Sample.report_degraded stdout ~count:mf.Store.m_count
        ~quarantined:rp.Fleet.rp_quarantined rp.Fleet.rp_result;
      flush stdout;
      Printf.eprintf
        "replay: %d from cache, %d replayed on %d job(s), %d quarantined\n%!"
        rp.Fleet.rp_cached rp.Fleet.rp_replayed jobs
        (List.length rp.Fleet.rp_quarantined);
      if rp.Fleet.rp_quarantined <> [] then exit exit_degraded)

(* sweep: every leg of a design-space spec over the same store, with
   matched-pair statistics against the store's own configuration *)
let run_sweep_cmd trace_opts guard_opts sample_opts store_dir spec_text jobs
    quiet =
  (match
     Sweep.check_flags ~store:store_dir ~spec:spec_text ~jobs
       ~guard_degrade:guard_opts.g_degrade
       ~tracing:(trace_requested trace_opts)
       ~sampling:(sample_requested sample_opts) ~fuzz:false ()
   with
  | Error msg -> fleet_err msg
  | Ok () -> ());
  match Sweep.parse spec_text with
  | Error e -> fleet_err (Sweep.error_to_string e)
  | Ok spec -> (
    let wrap = fleet_guard_wrap ~cmd:"sweep" guard_opts in
    let jobs =
      if jobs = 0 then Stdlib.Domain.recommended_domain_count () else jobs
    in
    match Store.open_store ~dir:store_dir with
    | Error e -> fleet_err (Store.error_to_string e)
    | Ok store -> (
      let log = fleet_log quiet in
      log (Store.describe store);
      match
        catch_sim_failure (fun () -> Sweep.run ~jobs ~log ?wrap store spec)
      with
      | Error msg -> fleet_err msg
      | Ok report ->
        Sweep.render stdout report;
        flush stdout;
        if Sweep.degraded report <> [] then exit exit_degraded))

let store_arg =
  Arg.(
    value & opt string ""
    & info [ "store" ] ~docv:"DIR"
        ~doc:"Durable interval store directory (written by $(b,capture)).")

let socket_arg =
  Arg.(
    value & opt string ""
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix socket the job server listens on.")

let connect_arg =
  Arg.(
    value & opt string ""
    & info [ "connect" ] ~docv:"PATH"
        ~doc:"Unix socket of the job server to lease intervals from.")

let lease_timeout_arg =
  Arg.(
    value & opt float 30.0
    & info [ "lease-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Re-queue an interval if its worker has not delivered within \
           SECONDS (bounds the cost of a dead or wedged worker).")

let max_failures_arg =
  Arg.(
    value & opt int 3
    & info [ "max-failures" ] ~docv:"K"
        ~doc:
          "Quarantine an interval after K failed replay attempts: the run \
           still terminates, the report marks itself DEGRADED and covers \
           the surviving intervals only, and the exit code is 4.")

let connect_retries_arg =
  Arg.(
    value & opt int 50
    & info [ "connect-retries" ] ~docv:"N"
        ~doc:
          "Connection attempts before giving up, with exponential backoff \
           (50ms doubling to a 2s cap, jittered per worker) — lets workers \
           start before the server, and ride out a server restart.")

let chaos_arg =
  Arg.(
    value & opt string ""
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Arm seeded fault injection against this worker's own I/O (for \
           testing the fleet's recovery paths): rules \
           $(i,ACTION\\@POINT[:HIT]) joined by ';', e.g. \
           \"kill\\@work.done:2\". Actions: kill, drop, truncate, fail, \
           delay=SECS, flip=BIT.")

let capture_resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume an interrupted capture from its journal: the store \
           directory's PROGRESS record names the valid prefix of interval \
           checkpoints already on disk, and the master pass restarts from \
           the last one instead of from scratch. The resumed store is \
           byte-identical to an uninterrupted capture.")

let replay_jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Replay workers (in-process domains); 0 auto-detects the host \
           core count.")

let fleet_quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet" ] ~doc:"Suppress per-interval progress on stderr.")

let core_arg =
  Arg.(value & opt string "ooo" & info [ "core" ] ~doc:"Core model (ooo, smt, inorder, seq).")

let machine_arg =
  Arg.(value & opt string "k8" & info [ "machine" ] ~doc:"Machine config (k8, k8-silicon, tiny).")

let files_arg =
  Arg.(value & opt int 12 & info [ "files" ] ~doc:"Number of files in the rsync set.")

let commands_arg =
  Arg.(
    value
    & opt string "-run"
    & info [ "commands" ] ~doc:"PTLsim-style command list (e.g. \"-core ooo -run\").")

let max_mcycles_arg =
  Arg.(value & opt int 8000 & info [ "max-mcycles" ] ~doc:"Cycle budget, in millions.")

let iters_arg =
  Arg.(
    value
    & opt int 500_000
    & info [ "iters" ] ~doc:"Compute workload loop iterations.")

let bare_arg =
  Arg.(
    value & flag
    & info [ "bare" ]
        ~doc:
          "Run the compute workload on a bare machine (no minios kernel): \
           the loop ends in hlt instead of a syscall. Required for \
           $(b,--sample-jobs) — host-side kernel state is not \
           checkpointable.")

let vm_workload_arg =
  Arg.(
    value & opt string "gups"
    & info [ "workload" ] ~docv:"NAME"
        ~doc:
          "TLB-hostile workload: $(b,gups) (random read-modify-writes over \
           a large table) or $(b,stream) (linear read-modify-write sweeps).")

let vm_slots_arg =
  Arg.(
    value
    & opt int 65536
    & info [ "slots" ] ~docv:"N"
        ~doc:"GUPS table size in 8-byte cells (power of two).")

let vm_steps_arg =
  Arg.(
    value
    & opt int 200_000
    & info [ "steps" ] ~docv:"N" ~doc:"GUPS random updates to perform.")

let vm_bytes_arg =
  Arg.(
    value
    & opt int (1 lsl 20)
    & info [ "bytes" ] ~docv:"BYTES" ~doc:"stream working-set size in bytes.")

let vm_passes_arg =
  Arg.(
    value & opt int 4
    & info [ "passes" ] ~docv:"N" ~doc:"stream sweeps over the working set.")

let vm_hugepages_arg =
  Arg.(
    value & flag
    & info [ "hugepages" ]
        ~doc:
          "Back the bare machine's heap with 2M pages (PDE mappings) and \
           honor them as single TLB entries, multiplying TLB reach 512x.")

let vm_pwc_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pwc" ] ~docv:"ENTRIES"
        ~doc:
          "Override the machine's page-walk-cache geometry: ENTRIES slots \
           per level (0 disables the PWCs; sweepable as pwc.entries).")

let vm_demand_arg =
  Arg.(
    value & flag
    & info [ "demand" ]
        ~doc:
          "Run the workload as a minios user process with a lazily \
           populated address space: every first touch takes a real #PF \
           through the simulated kernel entry path. Implies gups.")

let vm_watermark_arg =
  Arg.(
    value & opt int 0
    & info [ "watermark" ] ~docv:"PAGES"
        ~doc:
          "Resident user-frame budget for the CLOCK reclaimer (0 = \
           unlimited). Reclaimed dirty pages swap out and fault back in, \
           with TLB shootdown IPIs to every core sharing the space.")

let vm_batch_arg =
  Arg.(
    value & opt int 8
    & info [ "batch" ] ~docv:"PAGES"
        ~doc:"Evictions per reclaim pass once over the watermark.")

let vm_cmd =
  Cmd.v
    (Cmd.info "vm"
       ~doc:
         "Run a TLB-hostile virtual-memory scenario: GUPS or streaming \
          over 4K or 2M pages, with configurable page-walk caches, \
          optionally demand-paged under minios with watermark-driven \
          CLOCK reclaim and TLB shootdowns. Prints DTLB MPKI and the \
          vm.* fault/reclaim counters next to the usual summary."
       ~man:
         [ `S Manpage.s_description;
           `P
             "The scenario axes are sweepable over a captured interval \
              store: pwc.entries, tlb.hugepages, vm.demand_paging, \
              vm.reclaim.watermark and vm.reclaim.batch (see $(b,optlsim \
              sweep)). The trace classes pagefault/tlb record #PF, \
              shootdown and walk-cache events (see $(b,--trace-filter))." ])
    Term.(
      const run_vm $ trace_term $ guard_term $ core_arg $ machine_arg
      $ vm_workload_arg $ vm_slots_arg $ vm_steps_arg $ vm_bytes_arg
      $ vm_passes_arg $ vm_hugepages_arg $ vm_pwc_arg $ vm_demand_arg
      $ vm_watermark_arg $ vm_batch_arg $ max_mcycles_arg)

let fuzz_machine_arg =
  Arg.(
    value & opt string "tiny"
    & info [ "machine" ] ~doc:"Machine config (k8, k8-silicon, tiny).")

let fuzz_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "fuzz-seed" ] ~docv:"SEED"
        ~doc:"Master PRNG seed; one seed fully determines the run.")

let fuzz_iters_arg =
  Arg.(
    value & opt int 500
    & info [ "fuzz-iters" ] ~docv:"N" ~doc:"Random programs to generate and co-simulate.")

let fuzz_len_arg =
  Arg.(
    value & opt int 40
    & info [ "fuzz-len" ] ~docv:"SLOTS"
        ~doc:"Instruction bundles (slots) per generated program.")

let fuzz_classes_arg =
  Arg.(
    value & opt string ""
    & info [ "fuzz-classes" ] ~docv:"CLASSES"
        ~doc:
          "Comma-separated instruction classes to draw from: alu, mem, \
           branch, string, lock, muldiv, fp, stack, misc. Default: all.")

let fuzz_report_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fuzz-report-dir" ] ~docv:"DIR"
        ~doc:
          "Write one divergence report file per finding under DIR (created \
           if absent) instead of printing reports to stdout.")

let fuzz_inject_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuzz-inject" ] ~docv:"N"
        ~doc:
          "Self-test: plant a mutated-flags-write bug in the model core \
           once N instructions have committed; the harness must catch, \
           shrink and report it (exit 2).")

let fuzz_no_oracle_arg =
  Arg.(
    value & flag
    & info [ "fuzz-no-oracle" ]
        ~doc:
          "Disable the third model: skip the spec-table oracle lockstep \
           cross-check and fall back to two-way seq-vs-timed fuzzing \
           (divergence reports then carry no majority verdict).")

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random programs co-simulated three ways — \
          timed core, sequential reference and the spec-table oracle — \
          with delta-debugged shrinking, majority verdicts and \
          trace-backed divergence reports. Exits 2 when divergences are \
          found."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Generates seedable random x86lite-64 programs (weighted over \
              the decoder's supported opcode space), runs each on the \
              chosen timed core and on the sequential reference core from \
              identical initial state, and compares committed \
              register/flag/memory state at instruction-count checkpoints; \
              the same image also runs in lockstep against the independent \
              spec-derived reference interpreter (see $(b,optlsim \
              conformance)). On divergence of either pair, the failing \
              sequence is minimized with delta debugging and re-run with \
              the pipeline event trace armed; the report carries the \
              shrunk program, both architectural states, the trace window \
              leading up to the mismatch, and the majority verdict naming \
              the odd model out." ])
    Term.(
      const run_fuzz $ trace_term $ guard_term $ sample_term $ core_arg
      $ fuzz_machine_arg $ fuzz_seed_arg $ fuzz_iters_arg $ fuzz_len_arg
      $ fuzz_classes_arg $ fuzz_report_dir_arg $ fuzz_inject_arg
      $ fuzz_no_oracle_arg)

let rsync_cmd =
  Cmd.v (Cmd.info "rsync" ~doc:"Run the paper's rsync-over-ssh benchmark")
    Term.(
      const run_rsync $ trace_term $ guard_term $ sample_term $ core_arg
      $ machine_arg $ files_arg $ commands_arg $ max_mcycles_arg)

let compute_cmd =
  Cmd.v (Cmd.info "compute" ~doc:"Run a synthetic compute workload")
    Term.(
      const run_compute $ trace_term $ guard_term $ sample_term $ core_arg
      $ machine_arg $ commands_arg $ max_mcycles_arg $ iters_arg $ bare_arg)

let capture_cmd =
  Cmd.v
    (Cmd.info "capture"
       ~doc:
         "Run the sampled master pass over the bare compute workload and \
          write a durable interval store: a shared base image plus one \
          delta checkpoint (dirty pages + changed uarch components) per \
          measured window. The store outlives this process; replay it \
          with $(b,replay) or distribute it with $(b,serve)/$(b,work).")
    Term.(
      const run_capture_cmd $ guard_term $ sample_term $ core_arg
      $ machine_arg $ iters_arg $ max_mcycles_arg $ store_arg
      $ capture_resume_arg)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a captured interval store over a unix-socket work queue: \
          $(b,optlsim work) processes lease intervals, dead workers' \
          leases re-queue after $(b,--lease-timeout), results land in the \
          store's (checkpoint, config) cache, and the merged report — \
          byte-identical to a serial --sample run — prints on stdout.")
    Term.(
      const run_serve_cmd $ store_arg $ socket_arg $ lease_timeout_arg
      $ max_failures_arg $ fleet_quiet_arg)

let work_cmd =
  Cmd.v
    (Cmd.info "work"
       ~doc:
         "Join a sampling fleet: connect to an $(b,optlsim serve) socket, \
          lease intervals, replay each from the store's base + delta \
          checkpoints on private state, and stream results back until the \
          server drains.")
    Term.(
      const run_work_cmd $ guard_term $ connect_arg $ connect_retries_arg
      $ chaos_arg $ fleet_quiet_arg)

let sweep_spec_arg =
  Arg.(
    value & opt string ""
    & info [ "sweep" ] ~docv:"SPEC"
        ~doc:
          "Design-space spec: axes $(i,KEY=V1,V2,...) separated by a \
           standalone $(b,x), e.g. \"cache.l2.size=256k,1m,4m x \
           bpred=gshare,hybrid\". The cross product of the axes gives the \
           legs; run $(b,sweep) with an unknown key to list the known \
           ones.")

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Replay every leg of a design-space spec over the same captured \
          interval store and rank the legs with matched-pair statistics: \
          per-interval CPI deltas against the store's own configuration \
          give paired 95% confidence intervals (common random numbers — \
          far tighter than independent runs), plus win/loss/tie verdicts \
          and a Pareto frontier over CPI, L1D MPKI and an area proxy. \
          Results land in the store's per-config result cache, so \
          re-running a sweep (or widening it) only pays for new legs.")
    Term.(
      const run_sweep_cmd $ trace_term $ guard_term $ sample_term $ store_arg
      $ sweep_spec_arg $ replay_jobs_arg $ fleet_quiet_arg)

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a captured interval store in this process (no server): \
          cache-aware, optionally parallel across domains, printing the \
          same merged report the fleet produces.")
    Term.(
      const run_replay_cmd $ guard_term $ store_arg $ replay_jobs_arg
      $ fleet_quiet_arg)

(* ---------- conformance: spec-derived property + exception suites ---------- *)

let run_conformance level coverage_only =
  let cov = Spec.coverage () in
  print_string (Conformance.coverage_to_string cov);
  let cov_ok = cov.Spec.missing = [] in
  if coverage_only then (if not cov_ok then exit 1)
  else begin
    let level = if level = "quick" then `Quick else `Full in
    let progress key = Printf.eprintf "  row %-10s\r%!" key in
    let rep = Conformance.run_properties ~level ~progress () in
    Printf.eprintf "%-20s\r%!" "";
    print_string (Conformance.report_to_string rep);
    let exc = Conformance.run_exceptions () in
    print_string (Conformance.exc_report_to_string exc);
    if not cov_ok then exit 1;
    if
      rep.Conformance.p_failures > 0
      || rep.Conformance.p_vacuous > 0
      || exc.Conformance.e_failures <> []
    then exit 2
  end

let conformance_level_arg =
  let doc = "Sweep depth: $(b,full) (every corner operand and form) or \
             $(b,quick) (reduced set)." in
  Arg.(value & opt (enum [ ("full", "full"); ("quick", "quick") ]) "full"
       & info [ "level" ] ~docv:"LEVEL" ~doc)

let conformance_coverage_arg =
  let doc = "Only report spec coverage of the fuzz-generator opcode set; \
             exit 1 if any generator-reachable opcode has no spec row." in
  Arg.(value & flag & info [ "coverage" ] ~doc)

let conformance_cmd =
  Cmd.v
    (Cmd.info "conformance"
       ~doc:
         "Run the spec-derived conformance suites: per-row flag-lattice \
          property sweeps over corner operands (oracle vs sequential core \
          in lockstep), table-driven exception triggers (#DE/#GP/#PF \
          prediction vs IDT delivery), and the generator-coverage gap \
          report. Exit 2 on any conformance failure, 1 on a coverage gap.")
    Term.(const run_conformance $ conformance_level_arg $ conformance_coverage_arg)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"List registered core models")
    Term.(
      const (fun () ->
          Printf.printf "core models: %s\n" (String.concat ", " (Registry.names ()));
          Printf.printf "machine configs: k8 (k8-ptlsim), k8-silicon, tiny\n")
      $ const ())

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "optlsim" ~doc:"Cycle-accurate full-system x86-64-style simulator")
          [
            rsync_cmd; compute_cmd; vm_cmd; fuzz_cmd; capture_cmd;
            serve_cmd; work_cmd; replay_cmd; sweep_cmd; conformance_cmd;
            stats_cmd;
          ]))
