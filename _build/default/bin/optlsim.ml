(* The optlsim command-line front end: boot the full-system rsync
   benchmark (or a synthetic compute workload) under a chosen core model
   and machine configuration, with PTLsim-style command lists.

     optlsim rsync --core ooo --machine k8 --files 24
     optlsim compute --commands "-core ooo -run -stopinsns 100k : -native"
     optlsim stats   # list core models and machine configs *)

open Ptlsim
open Cmdliner

let machine_of_name = function
  | "k8" | "k8-ptlsim" -> Config.k8_ptlsim
  | "k8-silicon" -> Config.k8_silicon
  | "tiny" -> Config.tiny
  | other -> failwith ("unknown machine config: " ^ other)

let print_summary d k =
  let st = d.Domain.env.Env.stats in
  Printf.printf "cycles (domain):      %d\n" (Statstree.get st "domain.cycles");
  Printf.printf "instructions:         %d\n" (Domain.insns d);
  Printf.printf "mode switches:        %d\n" (Statstree.get st "domain.mode_switches");
  let total = float_of_int (max 1 (Statstree.get st "domain.cycles")) in
  let pct p = 100.0 *. float_of_int (Statstree.get st p) /. total in
  Printf.printf "user/kernel/idle:     %.1f%% / %.1f%% / %.1f%%\n"
    (pct "domain.cycles_in_mode.user")
    (pct "domain.cycles_in_mode.kernel")
    (pct "domain.cycles_in_mode.idle");
  List.iter
    (fun p ->
      let v = Statstree.get st p in
      if v > 0 then Printf.printf "%-22s%d\n" (p ^ ":") v)
    [ "ooo.commit.insns"; "ooo.commit.uops"; "ooo.commit.mispredicts";
      "ooo.dcache.dtlb_misses"; "ooo.mem.L1D.misses"; "kernel.syscalls";
      "kernel.context_switches"; "kernel.packets"; "kernel.disk_reads" ];
  (match k with
  | Some k ->
    Printf.printf "shutdown:             %b\n" (Kernel.is_shutdown k)
  | None -> ());
  Printf.printf "phase markers:        %s\n"
    (String.concat " "
       (List.map (fun (m, c) -> Printf.sprintf "%d@%d" m c) (Domain.markers d)))

let run_rsync core machine files commands max_mcycles =
  let fileset = { Fileset.default with Fileset.nfiles = files } in
  let d, k =
    Ptlmon.launch
      {
        Ptlmon.default_spec with
        Ptlmon.programs = Rsync_progs.programs ();
        files = Fileset.generate fileset;
        machine_config = machine_of_name machine;
        core;
      }
  in
  Domain.submit d commands;
  ignore (Domain.run ~max_cycles:(max_mcycles * 1_000_000) d);
  Printf.printf "synchronized correctly: %b\n" (Rsync_bench.verify_sync k);
  print_summary d (Some k)

let run_compute core machine commands max_mcycles =
  let g = Gasm.create () in
  Gasm.jmp g "main";
  Gasm.label g "main";
  Gasm.li g Gasm.rbp Abi.user_heap_base;
  Gasm.lii g Gasm.rcx 500_000;
  Gasm.label g "top";
  Gasm.ld g Gasm.rax ~base:Gasm.rbp ();
  Gasm.addi g Gasm.rax 1;
  Gasm.st g ~base:Gasm.rbp Gasm.rax ();
  Gasm.imuli g Gasm.rbx 1103515245;
  Gasm.addi g Gasm.rbx 12345;
  Gasm.dec g Gasm.rcx;
  Gasm.jne g "top";
  Gasm.sys_marker g 999;
  Gasm.sys_exit g 0;
  let env = Env.create () in
  let ctx = Context.create ~vcpu_id:0 in
  let k = Kernel.create env ctx in
  Kernel.register_program k ~name:"init" (Gasm.assemble g);
  Kernel.boot k;
  let d = Domain.create ~kernel:k ~core ~config:(machine_of_name machine) env ctx in
  Domain.submit d commands;
  ignore (Domain.run ~max_cycles:(max_mcycles * 1_000_000) d);
  print_summary d (Some k)

let core_arg =
  Arg.(value & opt string "ooo" & info [ "core" ] ~doc:"Core model (ooo, smt, inorder, seq).")

let machine_arg =
  Arg.(value & opt string "k8" & info [ "machine" ] ~doc:"Machine config (k8, k8-silicon, tiny).")

let files_arg =
  Arg.(value & opt int 12 & info [ "files" ] ~doc:"Number of files in the rsync set.")

let commands_arg =
  Arg.(
    value
    & opt string "-run"
    & info [ "commands" ] ~doc:"PTLsim-style command list (e.g. \"-core ooo -run\").")

let max_mcycles_arg =
  Arg.(value & opt int 8000 & info [ "max-mcycles" ] ~doc:"Cycle budget, in millions.")

let rsync_cmd =
  Cmd.v (Cmd.info "rsync" ~doc:"Run the paper's rsync-over-ssh benchmark")
    Term.(const run_rsync $ core_arg $ machine_arg $ files_arg $ commands_arg $ max_mcycles_arg)

let compute_cmd =
  Cmd.v (Cmd.info "compute" ~doc:"Run a synthetic compute workload")
    Term.(const run_compute $ core_arg $ machine_arg $ commands_arg $ max_mcycles_arg)

let stats_cmd =
  Cmd.v (Cmd.info "stats" ~doc:"List registered core models")
    Term.(
      const (fun () ->
          Printf.printf "core models: %s\n" (String.concat ", " (Registry.names ()));
          Printf.printf "machine configs: k8 (k8-ptlsim), k8-silicon, tiny\n")
      $ const ())

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "optlsim" ~doc:"Cycle-accurate full-system x86-64-style simulator")
          [ rsync_cmd; compute_cmd; stats_cmd ]))
