(* Microbenchmark workload tests: functional correctness on both engines
   plus the latency/IPC signatures each kernel is designed to show. *)

open Ptl_util
module MB = Ptl_workloads.Microbench
module Machine = Ptl_arch.Machine
module Context = Ptl_arch.Context
module Seqcore = Ptl_arch.Seqcore
module Ooo = Ptl_ooo.Ooo_core
module Config = Ptl_ooo.Config

let preload m (vaddr, bytes) =
  String.iteri
    (fun i c ->
      Machine.write_mem m
        ~vaddr:(Int64.add vaddr (Int64.of_int i))
        ~size:W64.B1 ~value:(Int64.of_int (Char.code c)))
    bytes

let run_ooo ?(config = Config.k8_ptlsim) img blobs =
  let m = Machine.create ~heap_pages:256 img in
  List.iter (preload m) blobs;
  let core = Ooo.create config m.Machine.env [| m.Machine.ctx |] in
  let cycles = Ooo.run core ~max_cycles:100_000_000 in
  (m, cycles, Ooo.insns core)

let run_seq img blobs =
  let m = Machine.create ~heap_pages:256 img in
  List.iter (preload m) blobs;
  let seq = Seqcore.create m.Machine.env m.Machine.ctx in
  ignore (Seqcore.run seq ~max_insns:50_000_000);
  m

let test_pointer_chase_dependent () =
  let slots = 512 and steps = 2_000 in
  let table = MB.chase_table ~slots ~seed:7 in
  let img = MB.pointer_chase ~slots ~steps in
  let m, cycles, insns = run_ooo img [ table ] in
  (* the chase must stay within the table *)
  let final = Machine.gpr m Ptl_isa.Regs.rax in
  Alcotest.(check bool) "pointer in range" true
    (final >= Machine.heap_base
    && final < Int64.add Machine.heap_base (Int64.of_int (slots * 8)));
  (* dependent loads: CPI well above 1 *)
  Alcotest.(check bool)
    (Printf.sprintf "latency bound (%d cyc / %d insns)" cycles insns)
    true
    (cycles > 2 * insns)

let test_stream_vs_chase_ipc () =
  (* same instruction budget: the independent stream must run at a much
     higher IPC than the dependent chase *)
  (* chase over 128 KiB (beyond L1) so every step pays real latency *)
  let table = MB.chase_table ~slots:16_384 ~seed:7 in
  let _, ccycles, cinsns = run_ooo (MB.pointer_chase ~slots:16_384 ~steps:3_000) [ table ] in
  let _, scycles, sinsns = run_ooo (MB.stream ~bytes:32_768 ~passes:8) [] in
  let chase_ipc = float_of_int cinsns /. float_of_int ccycles in
  let stream_ipc = float_of_int sinsns /. float_of_int scycles in
  Alcotest.(check bool)
    (Printf.sprintf "stream ipc %.2f > 2x chase ipc %.2f" stream_ipc chase_ipc)
    true
    (stream_ipc > 2.0 *. chase_ipc)

let test_matmul_correct () =
  let n = 8 in
  (* A = I (identity), B = arbitrary: C must equal B *)
  let blob_of f =
    let b = Buffer.create (n * n * 8) in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let v = Int64.bits_of_float (f i j) in
        for k = 0 to 7 do
          Buffer.add_char b (Char.chr (W64.byte v k))
        done
      done
    done;
    Buffer.contents b
  in
  let a = blob_of (fun i j -> if i = j then 1.0 else 0.0) in
  let bm = blob_of (fun i j -> float_of_int ((i * 31) + j)) in
  let img = MB.matmul ~n in
  let m = run_seq img
      [ (Machine.heap_base, a);
        (Int64.add Machine.heap_base (Int64.of_int (n * n * 8)), bm) ]
  in
  let c_base = Int64.add Machine.heap_base (Int64.of_int (2 * n * n * 8)) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let bits =
        Machine.read_mem m
          ~vaddr:(Int64.add c_base (Int64.of_int (((i * n) + j) * 8)))
          ~size:W64.B8
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "C[%d,%d]" i j)
        (float_of_int ((i * 31) + j))
        (Int64.float_of_bits bits)
    done
  done

let test_qsort_sorts () =
  let n = 200 in
  let keys = MB.qsort_keys ~n ~seed:99 in
  let img = MB.qsort ~n in
  (* functional core *)
  let m = run_seq img [ keys ] in
  Alcotest.(check int64) "no inversions (seq)" 0L (Machine.gpr m Ptl_isa.Regs.rax);
  (* cycle-accurate core gets the identical answer *)
  let m2, _, _ = run_ooo ~config:Config.tiny img [ keys ] in
  Alcotest.(check int64) "no inversions (ooo)" 0L (Machine.gpr m2 Ptl_isa.Regs.rax);
  (* arrays byte-identical between engines *)
  for i = 0 to n - 1 do
    let rd m =
      Machine.read_mem m
        ~vaddr:(Int64.add Machine.heap_base (Int64.of_int (i * 8)))
        ~size:W64.B8
    in
    if rd m <> rd m2 then Alcotest.fail (Printf.sprintf "engines differ at %d" i)
  done

let test_chase_tlb_sensitivity () =
  (* a chase over many pages: the 2-level TLB config must take far fewer
     cycles than the 1-level one (the Table-1 DTLB mechanism, in vitro) *)
  let slots = 16_384 (* 128 KiB = 32 pages *) and steps = 8_000 in
  let table = MB.chase_table ~slots ~seed:3 in
  let img = MB.pointer_chase ~slots ~steps in
  let run dtlb =
    let config = { Config.k8_ptlsim with Config.dtlb } in
    let _, cycles, _ = run_ooo ~config img [ table ] in
    cycles
  in
  let one_level = run Ptl_mem.Tlb.ptlsim_config in
  let two_level = run Ptl_mem.Tlb.k8_config in
  Alcotest.(check bool)
    (Printf.sprintf "1-level %d > 2-level %d cycles" one_level two_level)
    true (one_level > two_level)

let suite =
  [
    Alcotest.test_case "pointer chase is latency bound" `Quick test_pointer_chase_dependent;
    Alcotest.test_case "stream beats chase on ipc" `Quick test_stream_vs_chase_ipc;
    Alcotest.test_case "matmul correct" `Quick test_matmul_correct;
    Alcotest.test_case "qsort sorts on both engines" `Quick test_qsort_sorts;
    Alcotest.test_case "chase tlb sensitivity" `Quick test_chase_tlb_sensitivity;
  ]
