(* Branch predictor unit tests: training behaviour of each direction
   predictor, BTB replacement, and RAS speculation/repair — plus
   disassembler smoke checks (kept here to avoid a one-test module). *)

module P = Ptl_bpred.Predictor
module Stats = Ptl_stats.Statstree

let make direction =
  P.create (Stats.create ())
    { P.direction; btb_entries = 64; btb_ways = 4; ras_entries = 8 }

let train p ~rip ~taken n =
  for _ = 1 to n do
    let pred = P.predict_cond p ~rip in
    P.update_cond p ~rip ~taken ~mispredicted:(pred <> taken)
  done

let test_bimodal_learns () =
  let p = make (P.Bimodal 10) in
  train p ~rip:0x400100L ~taken:true 8;
  Alcotest.(check bool) "learned taken" true (P.predict_cond p ~rip:0x400100L);
  train p ~rip:0x400100L ~taken:false 8;
  Alcotest.(check bool) "relearned not-taken" false (P.predict_cond p ~rip:0x400100L)

let test_bimodal_hysteresis () =
  (* 2-bit counters: one contrary outcome must not flip a saturated
     prediction *)
  let p = make (P.Bimodal 10) in
  train p ~rip:0x400100L ~taken:true 8;
  train p ~rip:0x400100L ~taken:false 1;
  Alcotest.(check bool) "still taken after one miss" true
    (P.predict_cond p ~rip:0x400100L)

let test_gshare_uses_history () =
  (* alternating pattern TNTN...: a gshare with history learns it; a
     bimodal stays ~50% *)
  let run direction =
    let p = make direction in
    let rip = 0x400200L in
    let wrong = ref 0 in
    for i = 0 to 399 do
      let taken = i mod 2 = 0 in
      let pred = P.predict_cond p ~rip in
      if pred <> taken then incr wrong;
      P.update_cond p ~rip ~taken ~mispredicted:(pred <> taken)
    done;
    !wrong
  in
  let gshare_wrong = run (P.Gshare { table_bits = 12; history_bits = 8 }) in
  let bimodal_wrong = run (P.Bimodal 12) in
  Alcotest.(check bool)
    (Printf.sprintf "gshare (%d wrong) beats bimodal (%d wrong) on TNTN" gshare_wrong
       bimodal_wrong)
    true
    (gshare_wrong < 30 && bimodal_wrong > 100)

let test_hybrid_chooser () =
  (* the hybrid should approach the better component on the alternating
     pattern (i.e. behave gshare-like) *)
  let p = make (P.Hybrid { table_bits = 12; history_bits = 8; chooser_bits = 10 }) in
  let rip = 0x400300L in
  let late_wrong = ref 0 in
  for i = 0 to 799 do
    let taken = i mod 2 = 0 in
    let pred = P.predict_cond p ~rip in
    if i > 400 && pred <> taken then incr late_wrong;
    P.update_cond p ~rip ~taken ~mispredicted:(pred <> taken)
  done;
  Alcotest.(check bool) "hybrid converges" true (!late_wrong < 40)

let test_btb () =
  let p = make (P.Bimodal 10) in
  Alcotest.(check (option int64)) "cold miss" None (P.predict_target p ~rip:0x400400L);
  P.update_target p ~rip:0x400400L ~target:0x400ABCL;
  Alcotest.(check (option int64)) "hit" (Some 0x400ABCL) (P.predict_target p ~rip:0x400400L);
  (* retargeting (indirect branch changes destination) *)
  P.update_target p ~rip:0x400400L ~target:0x400DEFL;
  Alcotest.(check (option int64)) "retargeted" (Some 0x400DEFL)
    (P.predict_target p ~rip:0x400400L)

let test_btb_capacity () =
  let p = make (P.Bimodal 10) in
  (* 64 entries, 4-way: flood with many targets; recent ones must survive *)
  for i = 0 to 199 do
    P.update_target p ~rip:(Int64.of_int (0x400000 + (i * 8))) ~target:(Int64.of_int i)
  done;
  let hits = ref 0 in
  for i = 150 to 199 do
    match P.predict_target p ~rip:(Int64.of_int (0x400000 + (i * 8))) with
    | Some t when t = Int64.of_int i -> incr hits
    | _ -> ()
  done;
  Alcotest.(check bool) "recent entries retained" true (!hits > 25)

let test_ras_push_pop () =
  let p = make (P.Bimodal 10) in
  P.ras_push p 0x1000L;
  P.ras_push p 0x2000L;
  Alcotest.(check (option int64)) "lifo 1" (Some 0x2000L) (P.ras_pop p);
  Alcotest.(check (option int64)) "lifo 2" (Some 0x1000L) (P.ras_pop p);
  Alcotest.(check (option int64)) "empty" None (P.ras_pop p)

let test_ras_checkpoint_repair () =
  let p = make (P.Bimodal 10) in
  P.ras_push p 0x1000L;
  (* speculative call that will be annulled *)
  let ck = P.ras_checkpoint p in
  P.ras_push p 0xBAD0L;
  P.ras_restore p ck;
  Alcotest.(check (option int64)) "repaired" (Some 0x1000L) (P.ras_pop p);
  (* speculative pop that will be annulled *)
  P.ras_push p 0x3000L;
  let ck = P.ras_checkpoint p in
  ignore (P.ras_pop p);
  P.ras_restore p ck;
  Alcotest.(check (option int64)) "pop undone" (Some 0x3000L) (P.ras_pop p)

let test_mispredict_counter () =
  let p = make (P.Bimodal 10) in
  P.update_cond p ~rip:0x400500L ~taken:true ~mispredicted:true;
  P.update_cond p ~rip:0x400500L ~taken:true ~mispredicted:false;
  Alcotest.(check int) "counted once" 1 (P.mispredicts p)

(* --- disassembler smoke checks --- *)

open Ptl_isa
open Ptl_util

let test_disasm () =
  let check insn expect =
    Alcotest.(check string) expect expect (Disasm.to_string insn)
  in
  check (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rax, Insn.RM (Insn.Reg Regs.rbx)))
    "addq rax, rbx";
  check (Insn.Mov (W64.B4, Insn.Reg Regs.rcx, Insn.Imm 5L)) "movd rcx, 0x5";
  check
    (Insn.Locked (Insn.Alu (Insn.Add, W64.B8, Insn.Mem (Insn.mem_bd Regs.rbp 8L), Insn.Imm 1L)))
    "lock addq [rbp+0x8], 0x1";
  check Insn.Ptlcall "ptlcall";
  check (Insn.Jcc (Flags.NE, 0x400010L)) "jne 0x400010";
  check (Insn.Movs (W64.B1, true)) "rep movsb"

let suite =
  [
    Alcotest.test_case "bimodal learns" `Quick test_bimodal_learns;
    Alcotest.test_case "bimodal hysteresis" `Quick test_bimodal_hysteresis;
    Alcotest.test_case "gshare uses history" `Quick test_gshare_uses_history;
    Alcotest.test_case "hybrid chooser" `Quick test_hybrid_chooser;
    Alcotest.test_case "btb hit/retarget" `Quick test_btb;
    Alcotest.test_case "btb capacity" `Quick test_btb_capacity;
    Alcotest.test_case "ras push/pop" `Quick test_ras_push_pop;
    Alcotest.test_case "ras checkpoint repair" `Quick test_ras_checkpoint_repair;
    Alcotest.test_case "mispredict counter" `Quick test_mispredict_counter;
    Alcotest.test_case "disassembler" `Quick test_disasm;
  ]
