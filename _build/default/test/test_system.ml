(* System-level integration tests: the complete rsync-over-ssh benchmark
   (functional correctness of the synchronization), SMT and multi-core
   execution, the in-order core, the registry, and domain-level ptlcall
   mode switching. *)

open Ptl_util
module RB = Ptl_workloads.Rsync_bench
module FS = Ptl_workloads.Fileset
module G = Ptl_workloads.Gasm
module Domain = Ptl_hyper.Domain
module Ptlmon = Ptl_hyper.Ptlmon
module Kernel = Ptl_kernel.Kernel
module Ramfs = Ptl_kernel.Ramfs
module Stats = Ptl_stats.Statstree
module Machine = Ptl_arch.Machine
module Context = Ptl_arch.Context
module Env = Ptl_arch.Env
module Ooo = Ptl_ooo.Ooo_core
module Config = Ptl_ooo.Config
module Multicore = Ptl_ooo.Multicore
module Inorder = Ptl_ooo.Inorder_core
module Registry = Ptl_ooo.Registry
module Coherence = Ptl_mem.Coherence
module Insn = Ptl_isa.Insn
module Flags = Ptl_isa.Flags

let small_fileset = { FS.default with FS.nfiles = 5; max_size = 5_000; min_size = 1_500 }

let test_rsync_end_to_end () =
  let d, k = Ptlmon.launch (RB.spec ~fileset:small_fileset ~snapshot_interval:None ()) in
  Domain.submit d "-core seq -run";
  ignore (Domain.run ~max_cycles:2_000_000_000 d);
  Alcotest.(check bool) "domain shut down" true (Kernel.is_shutdown k);
  Alcotest.(check bool) "dst now equals src" true (RB.verify_sync k);
  (* all benchmark processes exited cleanly *)
  List.iter
    (fun p ->
      if p.Kernel.pid > 1 then begin
        Alcotest.(check bool)
          (Printf.sprintf "%s is zombie" p.Kernel.pname)
          true
          (p.Kernel.state = Kernel.Zombie);
        Alcotest.(check int) (p.Kernel.pname ^ " exit 0") 0 p.Kernel.exit_code
      end)
    k.Kernel.procs;
  (* markers traced the phases in order *)
  let ms = List.map fst (Domain.markers d) in
  Alcotest.(check (list int)) "phases" [ 0; 1; 2; 3; 5; 6; 999 ] ms;
  let st = d.Domain.env.Env.stats in
  Alcotest.(check bool) "network packets" true (Stats.get st "kernel.packets" > 2);
  Alcotest.(check bool) "disk page-ins" true (Stats.get st "kernel.disk_reads" > 0);
  Alcotest.(check bool) "idle cycles (I/O waits)" true
    (Stats.get st "domain.cycles_in_mode.idle" > 0);
  Alcotest.(check bool) "kernel cycles" true
    (Stats.get st "domain.cycles_in_mode.kernel" > 0)

let test_rsync_deterministic () =
  (* two identical runs must produce identical counters (the paper's
     determinism claim, §2.1/§5: variance < 1% on real HW, 0 here) *)
  let run () =
    let d, _ = Ptlmon.launch (RB.spec ~fileset:small_fileset ~snapshot_interval:None ()) in
    Domain.submit d "-core seq -run";
    ignore (Domain.run ~max_cycles:2_000_000_000 d);
    ( Domain.insns d,
      Stats.get d.Domain.env.Env.stats "kernel.packets",
      Stats.get d.Domain.env.Env.stats "kernel.context_switches" )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical" true (a = b)

(* ---- SMT: two threads with real lock contention ---- *)

let lock_increment_image ~iters =
  (* Two SMT threads run this same code: spin on a lock at [heap], then
     increment a shared counter at [heap+8]. Thread id in rdi. *)
  let g = G.create ~base:0x40_0000L () in
  G.li g G.rbp Machine.heap_base;
  G.lii g G.r12 iters;
  G.label g "again";
  (* acquire: lock xchg [rbp], 1 until old value was 0 *)
  G.label g "spin";
  G.lii g G.rax 1;
  G.ins g (Insn.Xchg (W64.B8, Insn.Mem (Insn.mem_bd G.rbp 0L), G.rax));
  G.cmpi g G.rax 0;
  G.jne g "spin";
  (* critical section *)
  G.ld g G.rcx ~base:G.rbp ~disp:8 ();
  G.addi g G.rcx 1;
  G.st g ~base:G.rbp ~disp:8 G.rcx ();
  (* release *)
  G.xor g G.rax G.rax;
  G.st g ~base:G.rbp G.rax ();
  G.dec g G.r12;
  G.jne g "again";
  G.ins g Insn.Hlt;
  G.assemble g

let test_smt_lock_contention () =
  let iters = 200 in
  let img = lock_increment_image ~iters in
  let m = Machine.create img in
  (* second thread: same address space, same code *)
  let ctx2 = Context.create ~vcpu_id:1 in
  Context.restore ctx2 ~snapshot:m.Machine.ctx;
  let config = { Config.tiny with Config.smt_threads = 2 } in
  let core = Ooo.create config m.Machine.env [| m.Machine.ctx; ctx2 |] in
  ignore (Ooo.run core ~max_cycles:10_000_000);
  Alcotest.(check bool) "both threads halted" true (Ooo.all_idle core);
  let counter = Machine.read_mem m ~vaddr:(Int64.add Machine.heap_base 8L) ~size:W64.B8 in
  Alcotest.(check int64) "no lost updates" (Int64.of_int (2 * iters)) counter;
  let st = m.Machine.env.Env.stats in
  Alcotest.(check bool) "interlock contention happened" true
    (Stats.get st "interlock.contended" > 0)

(* ---- multicore: producer/consumer across two cores with coherence ---- *)

let test_multicore_coherence () =
  let iters = 100 in
  let img = lock_increment_image ~iters in
  let m = Machine.create img in
  let ctx2 = Context.create ~vcpu_id:1 in
  Context.restore ctx2 ~snapshot:m.Machine.ctx;
  let mc =
    Multicore.create
      ~coherence:(Coherence.Moesi { transfer_latency = 20; invalidate_latency = 10 })
      Config.tiny m.Machine.env
      [| m.Machine.ctx; ctx2 |]
  in
  ignore (Multicore.run mc ~max_cycles:20_000_000);
  Alcotest.(check bool) "all cores idle" true (Multicore.all_idle mc);
  let counter = Machine.read_mem m ~vaddr:(Int64.add Machine.heap_base 8L) ~size:W64.B8 in
  Alcotest.(check int64) "coherent updates" (Int64.of_int (2 * iters)) counter;
  let st = m.Machine.env.Env.stats in
  Alcotest.(check bool) "cache-to-cache transfers" true
    (Stats.get st "coherence.transfers" > 0);
  Alcotest.(check bool) "invalidations" true (Stats.get st "coherence.invalidations" > 0)

let test_multicore_instant_vs_moesi () =
  (* MOESI must be slower than instant visibility on a ping-pong line *)
  let run coherence =
    let img = lock_increment_image ~iters:100 in
    let m = Machine.create img in
    let ctx2 = Context.create ~vcpu_id:1 in
    Context.restore ctx2 ~snapshot:m.Machine.ctx;
    let mc = Multicore.create ~coherence Config.tiny m.Machine.env [| m.Machine.ctx; ctx2 |] in
    Multicore.run mc ~max_cycles:30_000_000
  in
  let instant = run Coherence.Instant in
  let moesi = run (Coherence.Moesi { transfer_latency = 40; invalidate_latency = 20 }) in
  Alcotest.(check bool) "moesi costs cycles" true (moesi > instant)

(* ---- in-order core + registry ---- *)

let sum_image () =
  let g = G.create ~base:0x40_0000L () in
  G.lii g G.rax 0;
  G.lii g G.rcx 500;
  G.label g "top";
  G.add g G.rax G.rcx;
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Insn.Hlt;
  G.assemble g

let test_inorder_core () =
  let m = Machine.create (sum_image ()) in
  let core = Inorder.create Config.tiny m.Machine.env m.Machine.ctx in
  ignore (Inorder.run core ~max_cycles:10_000_000);
  Alcotest.(check int64) "sum" 125250L (Machine.gpr m G.rax);
  (* scalar: CPI >= 1 *)
  Alcotest.(check bool) "cpi >= 1" true (Inorder.cycles core >= Inorder.insns core)

let test_registry_models () =
  let names = Registry.names () in
  List.iter
    (fun n -> Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    [ "ooo"; "smt"; "inorder"; "seq" ];
  (* every model computes the same architectural result *)
  List.iter
    (fun name ->
      let m = Machine.create (sum_image ()) in
      let inst = Registry.build name Config.tiny m.Machine.env [| m.Machine.ctx |] in
      let budget = ref 5_000_000 in
      while (not (inst.Registry.idle ())) && !budget > 0 do
        inst.Registry.step ();
        decr budget
      done;
      Alcotest.(check int64) (name ^ " result") 125250L (Machine.gpr m G.rax))
    [ "ooo"; "inorder"; "seq" ];
  match Registry.build "nonsense" Config.tiny (Env.create ()) [||] with
  | exception Registry.Unknown_core _ -> ()
  | _ -> Alcotest.fail "expected Unknown_core"

(* ---- ooo vs inorder vs seq: the performance ordering must hold ---- *)

let test_core_performance_ordering () =
  (* independent adds: a superscalar OOO core must beat the scalar
     in-order core on IPC *)
  let g = G.create ~base:0x40_0000L () in
  G.lii g G.rcx 2000;
  G.label g "top";
  G.addi g G.rax 1;
  G.addi g G.rbx 2;
  G.addi g G.rdx 3;
  G.addi g G.rsi 4;
  G.dec g G.rcx;
  G.jne g "top";
  G.ins g Insn.Hlt;
  let img = G.assemble g in
  let run_core name =
    let m = Machine.create img in
    let inst = Registry.build name Config.k8_ptlsim m.Machine.env [| m.Machine.ctx |] in
    let start = m.Machine.env.Env.cycle in
    let budget = ref 10_000_000 in
    while (not (inst.Registry.idle ())) && !budget > 0 do
      inst.Registry.step ();
      decr budget
    done;
    (m.Machine.env.Env.cycle - start, inst.Registry.insns ())
  in
  let ooo_cycles, ooo_insns = run_core "ooo" in
  let ino_cycles, ino_insns = run_core "inorder" in
  Alcotest.(check bool) "same work" true (abs (ooo_insns - ino_insns) < 10);
  let ooo_ipc = float_of_int ooo_insns /. float_of_int ooo_cycles in
  let ino_ipc = float_of_int ino_insns /. float_of_int ino_cycles in
  Alcotest.(check bool)
    (Printf.sprintf "ooo ipc (%.2f) > inorder ipc (%.2f)" ooo_ipc ino_ipc)
    true (ooo_ipc > ino_ipc)

(* ---- domain: ptlcall-driven native/sim switching ---- *)

let test_domain_mode_switching () =
  (* a bare-metal-style domain via kernel with a program that switches
     itself into simulation for a bounded span, like §2.3's trigger use *)
  let g = G.create () in
  G.jmp g "main";
  G.label g "main";
  (* run the first loop natively, then simulate 2000 insns, then native *)
  G.ptlctl g "-core ooo -run -stopinsns 2k : -native";
  G.lii g G.rcx 5000;
  G.label g "top";
  G.addi g G.rax 1;
  G.dec g G.rcx;
  G.jne g "top";
  G.sys_marker g 999;
  G.sys_exit g 0;
  let env = Env.create () in
  let ctx = Context.create ~vcpu_id:0 in
  let k = Kernel.create env ctx in
  Kernel.register_program k ~name:"init" (G.assemble g);
  Kernel.boot k;
  let d = Domain.create ~kernel:k ~config:Config.tiny env ctx in
  ignore (Domain.run ~max_cycles:500_000_000 d);
  Alcotest.(check bool) "finished" true (Kernel.is_shutdown k);
  let st = env.Env.stats in
  (* both engines ran *)
  Alcotest.(check bool) "mode switches happened" true
    (Stats.get st "domain.mode_switches" >= 2);
  Alcotest.(check bool) "native insns" true (Stats.get st "domain.native_insns" > 0);
  Alcotest.(check bool) "simulated insns" true (Stats.get st "ooo.commit.insns" > 1000)

let suite =
  [
    Alcotest.test_case "rsync benchmark end-to-end" `Slow test_rsync_end_to_end;
    Alcotest.test_case "rsync deterministic" `Slow test_rsync_deterministic;
    Alcotest.test_case "smt lock contention" `Quick test_smt_lock_contention;
    Alcotest.test_case "multicore MOESI coherence" `Quick test_multicore_coherence;
    Alcotest.test_case "moesi slower than instant" `Quick test_multicore_instant_vs_moesi;
    Alcotest.test_case "inorder core" `Quick test_inorder_core;
    Alcotest.test_case "registry models" `Quick test_registry_models;
    Alcotest.test_case "ooo beats inorder ipc" `Quick test_core_performance_ordering;
    Alcotest.test_case "domain mode switching" `Quick test_domain_mode_switching;
  ]
