test/test_microbench.ml: Alcotest Buffer Char Int64 List Printf Ptl_arch Ptl_isa Ptl_mem Ptl_ooo Ptl_util Ptl_workloads String W64
