test/test_workloads.ml: Alcotest Char Int64 List Printf Ptl_arch Ptl_hyper Ptl_isa Ptl_mem Ptl_ooo Ptl_util Ptl_workloads QCheck QCheck_alcotest String W64
