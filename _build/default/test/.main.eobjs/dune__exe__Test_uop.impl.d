test/test_uop.ml: Alcotest Array Asm Bbcache Char Decode Exec Flags Insn Int64 List Microcode Ptl_isa Ptl_stats Ptl_uop Ptl_util QCheck QCheck_alcotest Regs String Test_isa Uop W64
