test/main.ml: Alcotest Test_bpred Test_isa Test_kernel Test_mem Test_microbench Test_ooo Test_seqcore Test_stats Test_system Test_uop Test_util Test_w64 Test_workloads
