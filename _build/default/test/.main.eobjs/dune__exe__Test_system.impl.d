test/test_system.ml: Alcotest Int64 List Printf Ptl_arch Ptl_hyper Ptl_isa Ptl_kernel Ptl_mem Ptl_ooo Ptl_stats Ptl_util Ptl_workloads W64
