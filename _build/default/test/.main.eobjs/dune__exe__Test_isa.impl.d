test/test_isa.ml: Alcotest Asm Char Decode Disasm Encode Flags Format Insn Int64 List Ptl_isa Ptl_util QCheck QCheck_alcotest Regs String W64
