test/test_bpred.ml: Alcotest Disasm Flags Insn Int64 Printf Ptl_bpred Ptl_isa Ptl_stats Ptl_util Regs W64
