test/test_util.ml: Alcotest Bitops List Ptl_util Ring Rng String Tablefmt
