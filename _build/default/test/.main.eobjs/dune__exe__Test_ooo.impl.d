test/test_ooo.ml: Alcotest Asm Flags Insn Int64 List Printf Ptl_arch Ptl_isa Ptl_ooo Ptl_stats Ptl_util QCheck QCheck_alcotest Regs String W64
