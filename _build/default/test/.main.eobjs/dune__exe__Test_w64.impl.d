test/test_w64.ml: Alcotest Int64 Ptl_util QCheck QCheck_alcotest W64
