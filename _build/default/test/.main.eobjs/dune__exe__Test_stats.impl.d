test/test_stats.ml: Alcotest List Printf Ptl_stats String
