test/test_seqcore.ml: Alcotest Asm Flags Insn Int64 List Printf Ptl_arch Ptl_isa Ptl_util Regs W64
