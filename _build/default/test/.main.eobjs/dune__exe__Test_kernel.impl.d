test/test_kernel.ml: Alcotest Char List Ptl_arch Ptl_isa Ptl_kernel Ptl_ooo Ptl_stats Ptl_util Ptl_workloads String
