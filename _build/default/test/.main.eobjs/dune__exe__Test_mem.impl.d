test/test_mem.ml: Alcotest Cache Coherence Hierarchy Int64 List Pagetable Phys_mem Ptl_mem Ptl_stats QCheck QCheck_alcotest Tlb
