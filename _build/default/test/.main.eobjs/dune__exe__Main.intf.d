test/main.mli:
