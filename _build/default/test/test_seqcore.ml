(* End-to-end functional-core tests: whole guest programs assembled with
   Ptl_isa.Asm, loaded by Machine, executed by Seqcore. These validate the
   decoder + microcode + executor + paging stack together — the functional
   half of the paper's integrated simulator. *)

open Ptl_util
open Ptl_isa
module Arch = Ptl_arch
module Machine = Ptl_arch.Machine
module Seqcore = Ptl_arch.Seqcore
module Context = Ptl_arch.Context

let reg = Regs.gpr_of_name

let build insns =
  let a = Asm.create ~base:0x40_0000L () in
  List.iter
    (fun i ->
      match i with `I insn -> Asm.ins a insn | `L name -> Asm.label a name | `J f -> f a)
    insns;
  Asm.assemble a

let run ?(max_insns = 100_000) insns =
  let img = build insns in
  let m = Machine.create img in
  let seq = Machine.run_seq ~max_insns m in
  (m, seq)

let i x = `I x
let halt = [ i Insn.Hlt ]

let test_mov_add () =
  let m, _ =
    run
      ([ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 40L));
         i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.Imm 2L)) ]
      @ halt)
  in
  Alcotest.(check int64) "rax" 42L (Machine.gpr m (reg "rax"))

let test_loop_sum () =
  (* sum 1..100 with a conditional branch loop *)
  let insns =
    [ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 0L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 100L));
      `L "loop";
      i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.RM (Insn.Reg (reg "rcx"))));
      i (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg (reg "rcx")));
      `J (fun a -> Asm.jcc a Flags.NE "loop");
      i Insn.Hlt ]
  in
  let m, seq = run insns in
  Alcotest.(check int64) "sum" 5050L (Machine.gpr m (reg "rax"));
  Alcotest.(check bool) "many insns" true (Seqcore.insns seq > 300)

let test_memory_and_stack () =
  let insns =
    [ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 0x1234L));
      i (Insn.Push (Insn.RM (Insn.Reg (reg "rax"))));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 0L));
      i (Insn.Pop (Insn.Reg (reg "rbx")));
      (* store/load through the heap *)
      i (Insn.Movabs (reg "rsi", Ptl_arch.Machine.heap_base));
      i (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 8L), Insn.RM (Insn.Reg (reg "rbx"))));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rdx"), Insn.RM (Insn.Mem (Insn.mem_bd (reg "rsi") 8L)))) ]
    @ halt
  in
  let m, _ = run insns in
  Alcotest.(check int64) "pop" 0x1234L (Machine.gpr m (reg "rbx"));
  Alcotest.(check int64) "load" 0x1234L (Machine.gpr m (reg "rdx"))

let test_call_ret () =
  let insns =
    [ `J (fun a -> Asm.call a "double");
      i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.Imm 1L));
      i Insn.Hlt;
      `L "double";
      i (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.RM (Insn.Reg (reg "rax"))));
      i Insn.Ret ]
  in
  let img = build insns in
  let m = Machine.create img in
  Context.set_gpr m.Machine.ctx (reg "rax") 21L;
  let _ = Machine.run_seq m in
  Alcotest.(check int64) "call/ret" 43L (Machine.gpr m (reg "rax"))

let test_rep_movs () =
  (* copy 64 bytes between heap buffers with rep movsb *)
  let hb = Ptl_arch.Machine.heap_base in
  let insns =
    [ i (Insn.Movabs (reg "rsi", hb));
      i (Insn.Movabs (reg "rdi", Int64.add hb 256L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 64L));
      i (Insn.Movs (W64.B1, true)) ]
    @ halt
  in
  let img = build insns in
  let m = Machine.create img in
  for k = 0 to 63 do
    Machine.write_mem m ~vaddr:(Int64.add hb (Int64.of_int k)) ~size:W64.B1
      ~value:(Int64.of_int (k * 3 land 0xFF))
  done;
  let _ = Machine.run_seq m in
  for k = 0 to 63 do
    let v = Machine.read_mem m ~vaddr:(Int64.add hb (Int64.of_int (256 + k))) ~size:W64.B1 in
    Alcotest.(check int64) (Printf.sprintf "byte %d" k) (Int64.of_int (k * 3 land 0xFF)) v
  done;
  (* registers after: rcx = 0, rsi/rdi advanced *)
  Alcotest.(check int64) "rcx" 0L (Machine.gpr m (reg "rcx"));
  Alcotest.(check int64) "rsi" (Int64.add hb 64L) (Machine.gpr m (reg "rsi"))

let test_rep_movs_zero_count () =
  let hb = Ptl_arch.Machine.heap_base in
  let insns =
    [ i (Insn.Movabs (reg "rsi", hb));
      i (Insn.Movabs (reg "rdi", Int64.add hb 64L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 0L));
      i (Insn.Movs (W64.B8, true));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 7L)) ]
    @ halt
  in
  let m, _ = run insns in
  (* with rcx=0 nothing is copied and execution continues *)
  Alcotest.(check int64) "after" 7L (Machine.gpr m (reg "rax"));
  Alcotest.(check int64) "rsi unchanged" hb (Machine.gpr m (reg "rsi"))

let test_locked_rmw () =
  let hb = Ptl_arch.Machine.heap_base in
  let insns =
    [ i (Insn.Movabs (reg "rsi", hb));
      i (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), Insn.Imm 10L));
      i (Insn.Locked (Insn.Alu (Insn.Add, W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), Insn.Imm 5L)));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rbx"), Insn.Imm 100L));
      i (Insn.Locked (Insn.Xadd (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), reg "rbx"))) ]
    @ halt
  in
  let m, _ = run insns in
  Alcotest.(check int64) "mem" 115L (Machine.read_mem m ~vaddr:hb ~size:W64.B8);
  Alcotest.(check int64) "xadd old" 15L (Machine.gpr m (reg "rbx"))

let test_cmpxchg () =
  let hb = Ptl_arch.Machine.heap_base in
  let insns =
    [ i (Insn.Movabs (reg "rsi", hb));
      i (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), Insn.Imm 5L));
      (* success case: rax=5 matches *)
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 5L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rbx"), Insn.Imm 9L));
      i (Insn.Locked (Insn.Cmpxchg (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), reg "rbx")));
      i (Insn.Setcc (Flags.E, Insn.Reg (reg "rdx")));
      (* failure case: rax=42 does not match 9 *)
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 42L));
      i (Insn.Locked (Insn.Cmpxchg (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), reg "rbx")));
      i (Insn.Setcc (Flags.E, Insn.Reg (reg "rcx"))) ]
    @ halt
  in
  let m, _ = run insns in
  Alcotest.(check int64) "stored" 9L (Machine.read_mem m ~vaddr:hb ~size:W64.B8);
  Alcotest.(check int64) "first succeeded" 1L
    (Int64.logand (Machine.gpr m (reg "rdx")) 1L);
  Alcotest.(check int64) "second failed" 0L
    (Int64.logand (Machine.gpr m (reg "rcx")) 1L);
  (* failed cmpxchg loads the current value into rax *)
  Alcotest.(check int64) "rax updated" 9L (Machine.gpr m (reg "rax"))

let test_mul_div () =
  let insns =
    [ i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 1234567L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rbx"), Insn.Imm 89L));
      i (Insn.Muldiv (Insn.Mul, W64.B8, Insn.Reg (reg "rbx")));
      (* rdx:rax = 1234567*89 = 109876463; fits low *)
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rsi"), Insn.RM (Insn.Reg (reg "rax"))));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 1000L));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rdx"), Insn.Imm 0L));
      i (Insn.Muldiv (Insn.Div, W64.B8, Insn.Reg (reg "rcx"))) ]
    @ halt
  in
  let m, _ = run insns in
  Alcotest.(check int64) "product" 109876463L (Machine.gpr m (reg "rsi"));
  Alcotest.(check int64) "quotient" 109876L (Machine.gpr m (reg "rax"));
  Alcotest.(check int64) "remainder" 463L (Machine.gpr m (reg "rdx"))

let test_fp_program () =
  let hb = Ptl_arch.Machine.heap_base in
  let insns =
    [ i (Insn.Movabs (reg "rsi", hb));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 7L));
      i (Insn.Cvtsi2sd (0, reg "rax"));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 2L));
      i (Insn.Cvtsi2sd (1, reg "rax"));
      i (Insn.Sse (Insn.Divsd, 0, 1));
      (* xmm0 = 3.5; store, reload through x87, multiply by 2.0 via mem *)
      i (Insn.SseStore (Insn.mem_bd (reg "rsi") 0L, 0));
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.Imm 2L));
      i (Insn.Cvtsi2sd (2, reg "rax"));
      i (Insn.SseStore (Insn.mem_bd (reg "rsi") 8L, 2));
      i (Insn.Fld (Insn.mem_bd (reg "rsi") 0L));
      i (Insn.Fp (Insn.Fmul, Insn.mem_bd (reg "rsi") 8L));
      i (Insn.Fst (Insn.mem_bd (reg "rsi") 16L));
      i (Insn.SseLoad (3, Insn.mem_bd (reg "rsi") 16L));
      i (Insn.Cvtsd2si (reg "rbx", 3)) ]
    @ halt
  in
  let m, _ = run insns in
  Alcotest.(check int64) "7/2*2" 7L (Machine.gpr m (reg "rbx"))

let test_page_fault_unmapped () =
  (* a store to an unmapped address must fault; with no IDT installed the
     fault escalates to a triple fault *)
  let insns =
    [ i (Insn.Movabs (reg "rsi", 0x9999_0000L));
      i (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), Insn.Imm 1L)) ]
    @ halt
  in
  let img = build insns in
  let m = Machine.create img in
  match Machine.run_seq m with
  | exception Ptl_arch.Assists.Triple_fault _ -> ()
  | _ -> Alcotest.fail "expected triple fault"

let test_page_fault_handled () =
  (* install an IDT whose #PF handler skips to a recovery path *)
  let a = Asm.create ~base:0x40_0000L () in
  Asm.lea_label a (reg "rax") "idt";
  Asm.ins a (Insn.MovToCr (6, reg "rax"));
  (* set kernel stack for fault delivery *)
  Asm.ins a (Insn.Movabs (reg "rbx", 0x7FFF_0000L));
  Asm.ins a (Insn.MovToCr (1, reg "rbx"));
  Asm.ins a (Insn.Movabs (reg "rsi", 0x9999_0000L));
  Asm.ins a (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 0L), Insn.Imm 1L));
  (* not reached *)
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg (reg "rdx"), Insn.Imm 111L));
  Asm.ins a Insn.Hlt;
  Asm.label a "pf_handler";
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg (reg "rdx"), Insn.Imm 222L));
  (* read cr2 to check the faulting address *)
  Asm.ins a (Insn.MovFromCr (2, reg "rdi"));
  Asm.ins a Insn.Hlt;
  Asm.align a 8;
  Asm.label a "idt";
  for _v = 0 to 13 do
    Asm.quad a 0L
  done;
  Asm.quad_label a "pf_handler" (* vector 14 *);
  let img = Asm.assemble a in
  let m = Machine.create img in
  let _ = Machine.run_seq m in
  Alcotest.(check int64) "handler ran" 222L (Machine.gpr m (reg "rdx"));
  Alcotest.(check int64) "cr2" 0x9999_0000L (Machine.gpr m (reg "rdi"))

let test_int_iret_roundtrip () =
  let a = Asm.create ~base:0x40_0000L () in
  Asm.lea_label a (reg "rax") "idt";
  Asm.ins a (Insn.MovToCr (6, reg "rax"));
  Asm.ins a (Insn.Movabs (reg "rbx", 0x7FFF_0000L));
  Asm.ins a (Insn.MovToCr (1, reg "rbx"));
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 1L));
  Asm.ins a (Insn.Int 32);
  (* resumed here after iret *)
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 100L));
  Asm.ins a Insn.Hlt;
  Asm.label a "handler";
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rcx"), Insn.Imm 10L));
  (* discard error code, then return *)
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rsp"), Insn.Imm 8L));
  Asm.ins a Insn.Iret;
  Asm.align a 8;
  Asm.label a "idt";
  for _v = 0 to 31 do
    Asm.quad a 0L
  done;
  Asm.quad_label a "handler" (* vector 32 *);
  let img = Asm.assemble a in
  let m = Machine.create img in
  let _ = Machine.run_seq m in
  Alcotest.(check int64) "both paths ran in order" 111L (Machine.gpr m (reg "rcx"))

let test_external_irq_wakes_hlt () =
  let a = Asm.create ~base:0x40_0000L () in
  Asm.lea_label a (reg "rax") "idt";
  Asm.ins a (Insn.MovToCr (6, reg "rax"));
  Asm.ins a (Insn.Movabs (reg "rbx", 0x7FFF_0000L));
  Asm.ins a (Insn.MovToCr (1, reg "rbx"));
  Asm.ins a Insn.Sti;
  Asm.label a "idle";
  Asm.ins a Insn.Hlt;
  Asm.jmp a "idle";
  Asm.label a "timer";
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rdx"), Insn.Imm 1L));
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rsp"), Insn.Imm 8L));
  Asm.ins a Insn.Iret;
  Asm.align a 8;
  Asm.label a "idt";
  for _v = 0 to 31 do
    Asm.quad a 0L
  done;
  Asm.quad_label a "timer";
  let img = Asm.assemble a in
  let m = Machine.create img in
  let seq = Seqcore.create m.Machine.env m.Machine.ctx in
  (* run to the hlt *)
  let rec drive budget =
    if budget = 0 then ()
    else
      match Seqcore.step_block seq with
      | Seqcore.Idle -> ()
      | _ -> drive (budget - 1)
  in
  drive 1000;
  Alcotest.(check bool) "halted" false m.Machine.ctx.Context.running;
  (* inject the timer interrupt; the VCPU must wake, run the handler, and
     return to the idle loop *)
  Context.raise_irq m.Machine.ctx 32;
  drive 50;
  Alcotest.(check int64) "handler ran" 1L (Machine.gpr m (reg "rdx"));
  Alcotest.(check bool) "halted again" false m.Machine.ctx.Context.running

let test_smc_invalidation_functional () =
  (* program overwrites an instruction ahead of itself; the new bytes must
     execute (bb cache invalidated by the committed store) *)
  let a = Asm.create ~base:0x40_0000L () in
  (* patch target: mov rax, 1 (will be overwritten to mov rax, 2) *)
  Asm.lea_label a (reg "rsi") "target";
  (* run it once to get it into the bb cache *)
  Asm.call a "target_call";
  (* overwrite the 8-byte immediate in the movabs at target+2 *)
  Asm.ins a (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd (reg "rsi") 2L), Insn.Imm 2L));
  Asm.call a "target_call";
  Asm.ins a Insn.Hlt;
  Asm.label a "target_call";
  Asm.label a "target";
  Asm.ins a (Insn.Movabs (reg "rax", 1L));
  Asm.ins a Insn.Ret;
  let img = Asm.assemble a in
  let m = Machine.create img in
  let _ = Machine.run_seq m in
  Alcotest.(check int64) "patched code executed" 2L (Machine.gpr m (reg "rax"))

let test_syscall_sysret () =
  let a = Asm.create ~base:0x40_0000L () in
  Asm.lea_label a (reg "rax") "entry";
  Asm.ins a (Insn.MovToCr (5, reg "rax"));
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg (reg "rdi"), Insn.Imm 5L));
  Asm.ins a Insn.Syscall;
  (* back in user mode after sysret: hlt would #GP, so spin instead *)
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.Imm 1000L));
  Asm.label a "spin";
  Asm.jmp a "spin";
  Asm.label a "entry";
  (* kernel: rax = rdi * 2, return *)
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg (reg "rax"), Insn.RM (Insn.Reg (reg "rdi"))));
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg (reg "rax"), Insn.RM (Insn.Reg (reg "rax"))));
  Asm.ins a Insn.Sysret;
  let img = Asm.assemble a in
  let m = Machine.create img in
  let _ = Machine.run_seq ~max_insns:500 m in
  Alcotest.(check int64) "syscall result" 1010L (Machine.gpr m (reg "rax"))

let test_rdtsc_monotone () =
  let insns =
    [ i Insn.Rdtsc;
      i (Insn.Mov (W64.B8, Insn.Reg (reg "rbx"), Insn.RM (Insn.Reg (reg "rax")))) ]
    @ halt
  in
  let img = build insns in
  let m = Machine.create img in
  m.Machine.env.Ptl_arch.Env.cycle <- 12345;
  let _ = Machine.run_seq m in
  Alcotest.(check int64) "tsc value" 12345L (Machine.gpr m (reg "rbx"))

let suite =
  [
    Alcotest.test_case "mov/add" `Quick test_mov_add;
    Alcotest.test_case "loop sum 1..100" `Quick test_loop_sum;
    Alcotest.test_case "memory + stack" `Quick test_memory_and_stack;
    Alcotest.test_case "call/ret" `Quick test_call_ret;
    Alcotest.test_case "rep movsb" `Quick test_rep_movs;
    Alcotest.test_case "rep movs rcx=0" `Quick test_rep_movs_zero_count;
    Alcotest.test_case "locked rmw + xadd" `Quick test_locked_rmw;
    Alcotest.test_case "cmpxchg" `Quick test_cmpxchg;
    Alcotest.test_case "mul/div" `Quick test_mul_div;
    Alcotest.test_case "floating point x87+sse" `Quick test_fp_program;
    Alcotest.test_case "page fault unhandled" `Quick test_page_fault_unmapped;
    Alcotest.test_case "page fault handled" `Quick test_page_fault_handled;
    Alcotest.test_case "int/iret roundtrip" `Quick test_int_iret_roundtrip;
    Alcotest.test_case "irq wakes hlt" `Quick test_external_irq_wakes_hlt;
    Alcotest.test_case "self-modifying code" `Quick test_smc_invalidation_functional;
    Alcotest.test_case "syscall/sysret" `Quick test_syscall_sysret;
    Alcotest.test_case "rdtsc" `Quick test_rdtsc_monotone;
  ]
