(* Tests for rings, bit operations, RNG determinism and table formatting. *)

open Ptl_util

let test_ring_fifo () =
  let r = Ring.create 4 in
  Alcotest.(check bool) "empty" true (Ring.is_empty r);
  Ring.push r 1;
  Ring.push r 2;
  Ring.push r 3;
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "pop" 1 (Ring.pop r);
  Ring.push r 4;
  Ring.push r 5;
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check (list int)) "order" [ 2; 3; 4; 5 ] (Ring.to_list r)

let test_ring_wrap () =
  let r = Ring.create 3 in
  for round = 0 to 9 do
    Ring.push r round;
    Alcotest.(check int) "wrapped pop" round (Ring.pop r)
  done;
  Alcotest.(check bool) "empty after" true (Ring.is_empty r)

let test_ring_drop () =
  let r = Ring.create 8 in
  List.iter (Ring.push r) [ 10; 11; 12; 13; 14 ];
  Ring.drop_youngest r 2;
  Alcotest.(check (list int)) "dropped" [ 10; 11; 12 ] (Ring.to_list r);
  Ring.push r 99;
  Alcotest.(check (list int)) "push after drop" [ 10; 11; 12; 99 ] (Ring.to_list r)

let test_ring_find () =
  let r = Ring.create 4 in
  List.iter (Ring.push r) [ 5; 6; 7 ];
  (match Ring.find_first r (fun v -> v > 5) with
  | Some (i, v) ->
    Alcotest.(check int) "index" 1 i;
    Alcotest.(check int) "value" 6 v
  | None -> Alcotest.fail "expected a match");
  Alcotest.(check bool) "no match" true (Ring.find_first r (fun v -> v > 99) = None)

let test_bitops () =
  Alcotest.(check int) "log2 1" 0 (Bitops.log2 1);
  Alcotest.(check int) "log2 4096" 12 (Bitops.log2 4096);
  Alcotest.(check bool) "pow2" true (Bitops.is_pow2 64);
  Alcotest.(check bool) "not pow2" false (Bitops.is_pow2 48);
  Alcotest.(check int) "align up" 128 (Bitops.align_up 65 64);
  Alcotest.(check int) "align down" 64 (Bitops.align_down 127 64);
  Alcotest.(check int) "popcount" 3 (Bitops.popcount 0b10101);
  Alcotest.(check int) "bits" 0b101 (Bitops.bits 0b1011010 ~lo:1 ~len:3)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done;
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed differs" true (Rng.next64 a <> Rng.next64 c)

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done

let test_thousands () =
  Alcotest.(check string) "paper style" "1,482,035K" (Tablefmt.thousands 1_482_035_000);
  Alcotest.(check string) "small" "6K" (Tablefmt.thousands 6_118);
  Alcotest.(check string) "zero" "0K" (Tablefmt.thousands 999)

let test_pct_diff () =
  Alcotest.(check string) "positive" "+4.30%" (Tablefmt.pct_diff 100.0 104.3);
  Alcotest.(check string) "negative" "-5.84%" (Tablefmt.pct_diff 100.0 94.16)

let test_table_render () =
  let s =
    Tablefmt.render
      ~headers:[| "Trial"; "Value" |]
      ~aligns:[| Tablefmt.Left; Tablefmt.Right |]
      [ [| "Cycles"; "123" |]; [| "Insns"; "4" |] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 4 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check bool) "aligned" true (String.length l > 0))
    lines

let suite =
  [
    Alcotest.test_case "ring fifo order" `Quick test_ring_fifo;
    Alcotest.test_case "ring wraparound" `Quick test_ring_wrap;
    Alcotest.test_case "ring drop_youngest" `Quick test_ring_drop;
    Alcotest.test_case "ring find_first" `Quick test_ring_find;
    Alcotest.test_case "bitops" `Quick test_bitops;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "thousands format" `Quick test_thousands;
    Alcotest.test_case "pct diff format" `Quick test_pct_diff;
    Alcotest.test_case "table render" `Quick test_table_render;
  ]
