(* Full-system demo: boot the minios kernel and run the paper's rsync-over-
   ssh benchmark (4 processes, pipes, an encrypted loopback TCP tunnel,
   compression, disk page-ins) on the cycle-accurate core, then print the
   phase markers and the user/kernel/idle split of Figure 2.

     dune exec examples/rsync_demo.exe *)

open Ptlsim

let () =
  let fileset = { Fileset.default with Fileset.nfiles = 8; max_size = 8_192 } in
  Printf.printf "file set: %d src files, %d bytes total\n%!" fileset.Fileset.nfiles
    (Fileset.src_bytes (Fileset.generate fileset));
  let d, k =
    Ptlmon.launch (Rsync_bench.spec ~fileset ~snapshot_interval:(Some 200_000) ())
  in
  Domain.submit d "-core ooo -run";
  let cycles = Domain.run ~max_cycles:2_000_000_000 d in
  Printf.printf "simulated %d cycles, %d instructions\n" cycles (Domain.insns d);
  Printf.printf "synchronization correct: %b\n" (Rsync_bench.verify_sync k);
  print_endline "phase markers (paper Figure 2 letters):";
  List.iter
    (fun (m, c) ->
      let phase =
        match m with
        | 0 -> "boot"
        | 1 -> "(a) startup / page-in done"
        | 2 -> "(b) ssh tunnel up"
        | 3 -> "(c) client file list built"
        | 5 -> "(e/f) deltas computed + transmitted"
        | 6 -> "ack received"
        | 999 -> "(g) shutdown"
        | _ -> "?"
      in
      Printf.printf "  marker %3d @ cycle %10d  %s\n" m c phase)
    (Domain.markers d);
  let st = d.Domain.env.Env.stats in
  let total = float_of_int (max 1 (Statstree.get st "domain.cycles")) in
  let pct path = 100.0 *. float_of_int (Statstree.get st path) /. total in
  Printf.printf "cycles: %.0f%% user, %.0f%% kernel, %.0f%% idle (paper: 15%% kernel, 27%% idle)\n"
    (pct "domain.cycles_in_mode.user")
    (pct "domain.cycles_in_mode.kernel")
    (pct "domain.cycles_in_mode.idle");
  List.iter
    (fun path -> Printf.printf "%-28s %d\n" path (Statstree.get st path))
    [ "kernel.syscalls"; "kernel.context_switches"; "kernel.packets";
      "kernel.disk_reads"; "kernel.timer_ticks"; "ooo.commit.insns";
      "ooo.commit.mispredicts"; "ooo.dcache.dtlb_misses" ]
