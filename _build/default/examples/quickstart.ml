(* Quickstart: assemble a guest program, run it on the cycle-accurate
   out-of-order core configured like an AMD K8, and read the statistics.

     dune exec examples/quickstart.exe *)

open Ptlsim

let () =
  (* 1. Write a guest program with the assembler: sum the integers
        1..10_000 with a conditional-branch loop. *)
  let a = Asm.create ~base:0x40_0000L () in
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg Regs.rax, Insn.Imm 0L));
  Asm.ins a (Insn.Mov (W64.B8, Insn.Reg Regs.rcx, Insn.Imm 10_000L));
  Asm.label a "loop";
  Asm.ins a (Insn.Alu (Insn.Add, W64.B8, Insn.Reg Regs.rax, Insn.RM (Insn.Reg Regs.rcx)));
  Asm.ins a (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg Regs.rcx));
  Asm.jcc a Flags.NE "loop";
  Asm.ins a Insn.Hlt;
  let image = Asm.assemble a in

  (* 2. Build a bare machine around the image (page tables, stack, heap). *)
  let m = Machine.create image in

  (* 3. Run it on the out-of-order core with the paper's K8 config. *)
  let core = Ooo_core.create Config.k8_ptlsim m.Machine.env [| m.Machine.ctx |] in
  let cycles = Ooo_core.run core ~max_cycles:10_000_000 in

  (* 4. Results: architectural state + microarchitectural statistics. *)
  Printf.printf "rax = %Ld (expected %d)\n" (Machine.gpr m Regs.rax) (10_000 * 10_001 / 2);
  Printf.printf "committed %d x86 instructions in %d cycles (IPC %.2f)\n"
    (Ooo_core.insns core) cycles
    (float_of_int (Ooo_core.insns core) /. float_of_int cycles);
  let stats = m.Machine.env.Env.stats in
  List.iter
    (fun path -> Printf.printf "%-28s %d\n" path (Statstree.get stats path))
    [ "ooo.commit.uops"; "ooo.commit.branches"; "ooo.commit.mispredicts";
      "ooo.mem.L1D.hits"; "ooo.mem.L1D.misses"; "bbcache.hits"; "bbcache.misses" ];

  (* 5. The same program on the functional core gives the same answer —
        the integrated-simulator guarantee (paper §6.1). *)
  let m2 = Machine.create image in
  ignore (Machine.run_seq m2);
  assert (Machine.gpr m2 Regs.rax = Machine.gpr m Regs.rax);
  print_endline "functional core agrees with the cycle-accurate core."
