(* SMT demo (paper §2.2/§4.4): several hardware threads share one core —
   issue queues, functional units and caches — while running a true
   shared-memory workload with LOCK-prefixed instructions arbitrated by
   the interlock controller.

     dune exec examples/smt_locks.exe *)

open Ptlsim

let lock_workload ~iters =
  let g = Gasm.create ~base:0x40_0000L () in
  Gasm.li g Gasm.rbp Machine.heap_base;
  Gasm.lii g Gasm.r12 iters;
  Gasm.label g "again";
  (* spinlock acquire with xchg (implicitly locked on x86) *)
  Gasm.label g "spin";
  Gasm.lii g Gasm.rax 1;
  Gasm.ins g (Insn.Xchg (W64.B8, Insn.Mem (Insn.mem_bd Gasm.rbp 0L), Gasm.rax));
  Gasm.cmpi g Gasm.rax 0;
  Gasm.jne g "spin";
  (* critical section: increment the shared counter *)
  Gasm.ld g Gasm.rcx ~base:Gasm.rbp ~disp:8 ();
  Gasm.addi g Gasm.rcx 1;
  Gasm.st g ~base:Gasm.rbp ~disp:8 Gasm.rcx ();
  (* release *)
  Gasm.xor g Gasm.rax Gasm.rax;
  Gasm.st g ~base:Gasm.rbp Gasm.rax ();
  (* private work between acquisitions *)
  Gasm.lii g Gasm.rdx 30;
  Gasm.label g "work";
  Gasm.ins g (Insn.Locked (Insn.Alu (Insn.Add, W64.B8, Insn.Mem (Insn.mem_bd Gasm.rbp 64L), Insn.Imm 1L)));
  Gasm.dec g Gasm.rdx;
  Gasm.jne g "work";
  Gasm.dec g Gasm.r12;
  Gasm.jne g "again";
  Gasm.ins g Insn.Hlt;
  Gasm.assemble g

let () =
  let iters = 300 in
  let image = lock_workload ~iters in
  List.iter
    (fun threads ->
      let m = Machine.create image in
      let ctxs =
        Array.init threads (fun i ->
            if i = 0 then m.Machine.ctx
            else begin
              let c = Context.create ~vcpu_id:i in
              Context.restore c ~snapshot:m.Machine.ctx;
              c
            end)
      in
      let config = { Config.k8_ptlsim with Config.smt_threads = threads } in
      let core = Ooo_core.create config m.Machine.env ctxs in
      let cycles = Ooo_core.run core ~max_cycles:200_000_000 in
      let counter = Machine.read_mem m ~vaddr:(Int64.add Machine.heap_base 8L) ~size:W64.B8 in
      let st = m.Machine.env.Env.stats in
      Printf.printf
        "%d thread(s): %9d cycles | counter %Ld/%d | interlock acquires %d, contended %d\n%!"
        threads cycles counter (threads * iters)
        (Statstree.get st "interlock.acquires")
        (Statstree.get st "interlock.contended");
      assert (counter = Int64.of_int (threads * iters)))
    [ 1; 2; 4 ];
  print_endline "no lost updates at any thread count: interlock semantics hold."
