(* Microbenchmark tour: the classic microarchitecture characterization
   kernels on the K8-configured out-of-order core — dependent pointer
   chasing (latency-bound), streaming (bandwidth/prefetch-bound), dense
   matmul (FP pipeline) and recursive quicksort (call/return + branchy).

     dune exec examples/microbench_tour.exe *)

open Ptlsim
module MB = Ptl_workloads.Microbench

let preload m (vaddr, bytes) =
  String.iteri
    (fun i c ->
      Machine.write_mem m
        ~vaddr:(Int64.add vaddr (Int64.of_int i))
        ~size:W64.B1 ~value:(Int64.of_int (Char.code c)))
    bytes

let run name img blobs =
  let m = Machine.create ~heap_pages:256 img in
  List.iter (preload m) blobs;
  let core = Ooo_core.create Config.k8_ptlsim m.Machine.env [| m.Machine.ctx |] in
  let cycles = Ooo_core.run core ~max_cycles:300_000_000 in
  let insns = Ooo_core.insns core in
  let stats = m.Machine.env.Env.stats in
  Printf.printf "%-22s %9d cycles %9d insns  IPC %.2f  L1D miss %5.2f%%  mispred %5.2f%%\n%!"
    name cycles insns
    (float_of_int insns /. float_of_int (max 1 cycles))
    (100.0
    *. float_of_int (Statstree.get stats "ooo.mem.L1D.misses")
    /. float_of_int
         (max 1
            (Statstree.get stats "ooo.mem.L1D.misses"
            + Statstree.get stats "ooo.mem.L1D.hits")))
    (100.0
    *. float_of_int (Statstree.get stats "ooo.commit.mispredicts")
    /. float_of_int (max 1 (Statstree.get stats "ooo.commit.cond_branches")));
  m

let () =
  Printf.printf "%-22s %9s %9s  %s\n" "kernel" "cycles" "insns" "characteristics";
  (* latency-bound: every load depends on the previous *)
  let slots = 32_768 in
  ignore
    (run "pointer-chase (256K)"
       (MB.pointer_chase ~slots ~steps:20_000)
       [ MB.chase_table ~slots ~seed:11 ]);
  (* bandwidth-shaped *)
  ignore (run "stream (32K x16)" (MB.stream ~bytes:32_768 ~passes:16) []);
  (* FP pipeline *)
  ignore (run "matmul 24x24" (MB.matmul ~n:24) []);
  (* branchy + call/return *)
  let n = 2_000 in
  let m = run "qsort 2000 keys" (MB.qsort ~n) [ MB.qsort_keys ~n ~seed:5 ] in
  assert (Machine.gpr m Regs.rax = 0L) (* sorted: zero inversions *);
  print_endline "qsort verified sorted (0 inversions).";
  print_endline
    "expected shape: chase IPC << stream IPC; qsort shows the highest\n\
     mispredict rate; matmul is FP-latency bound."
