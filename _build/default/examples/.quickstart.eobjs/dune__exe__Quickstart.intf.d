examples/quickstart.mli:
