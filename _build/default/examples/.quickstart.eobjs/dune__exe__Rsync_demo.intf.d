examples/rsync_demo.mli:
