examples/smt_locks.mli:
