examples/microbench_tour.ml: Char Config Env Int64 List Machine Ooo_core Printf Ptl_workloads Ptlsim Regs Statstree String W64
