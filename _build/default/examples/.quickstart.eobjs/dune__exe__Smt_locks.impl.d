examples/smt_locks.ml: Array Config Context Env Gasm Insn Int64 List Machine Ooo_core Printf Ptlsim Statstree W64
