examples/quickstart.ml: Asm Config Env Flags Insn List Machine Ooo_core Printf Ptlsim Regs Statstree W64
