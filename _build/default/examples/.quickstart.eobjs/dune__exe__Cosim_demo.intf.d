examples/cosim_demo.mli:
