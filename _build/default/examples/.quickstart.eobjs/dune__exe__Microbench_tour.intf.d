examples/microbench_tour.mli:
