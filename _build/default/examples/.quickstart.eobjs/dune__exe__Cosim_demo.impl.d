examples/cosim_demo.ml: Checkpoint Config Context Cosim Domain Env Gasm Insn Kernel Machine Printf Ptlsim Statstree String
