examples/rsync_demo.ml: Domain Env Fileset List Printf Ptlmon Ptlsim Rsync_bench Statstree
