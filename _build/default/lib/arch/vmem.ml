(** Functional virtual-memory access for microcode and the sequential core.

    Translates through the page tables directly (no TLB — the timing
    models own their TLBs), performs the permission checks of §2.1 and
    raises precise {!Fault.Guest_fault}s. Unaligned accesses that straddle
    a page boundary translate both pages, exactly the case the paper calls
    out as requiring special handling. *)

open Ptl_util
module Pm = Ptl_mem.Phys_mem
module Pt = Ptl_mem.Pagetable

type env = { mem : Pm.t }

let page_fault (ctx : Context.t) ~vaddr ~not_present ~write ~fetch ~at_rip =
  ctx.Context.cr2 <- vaddr;
  Fault.raise_fault
    (Fault.Page_fault
       { vaddr; not_present; write; user = ctx.Context.mode = Context.User; fetch })
    ~at_rip

(** Translate [vaddr] for the access described; returns the physical
    address. Sets accessed/dirty bits like hardware. *)
let translate env (ctx : Context.t) ~vaddr ~write ~fetch ~at_rip =
  let user = ctx.Context.mode = Context.User in
  match
    Pt.walk env.mem ~cr3_mfn:ctx.Context.cr3 ~vaddr ~write ~user ~exec:fetch ()
  with
  | Ok tr -> Pt.to_paddr tr vaddr
  | Error f ->
    page_fault ctx ~vaddr ~not_present:f.Pt.not_present ~write ~fetch ~at_rip

(** Translation that also reports the page-walk PTE loads (for timing). *)
let translate_with_walk env (ctx : Context.t) ~vaddr ~write ~fetch ~at_rip =
  let user = ctx.Context.mode = Context.User in
  match
    Pt.walk env.mem ~cr3_mfn:ctx.Context.cr3 ~vaddr ~write ~user ~exec:fetch ()
  with
  | Ok tr -> (Pt.to_paddr tr vaddr, tr.Pt.pte_addrs)
  | Error f ->
    page_fault ctx ~vaddr ~not_present:f.Pt.not_present ~write ~fetch ~at_rip

(* Split an access crossing a page boundary into per-page pieces. *)
let crosses_page vaddr n =
  let off = Int64.to_int (Int64.logand vaddr (Int64.of_int Pm.page_mask)) in
  off + n > Pm.page_size

(** Sized virtual read. *)
let read env ctx ~vaddr ~size ~at_rip =
  let n = W64.bytes_of_size size in
  if not (crosses_page vaddr n) then
    let paddr = translate env ctx ~vaddr ~write:false ~fetch:false ~at_rip in
    Pm.read_sized env.mem paddr size
  else
    (* straddling access: translate byte by byte (slow path, rare) *)
    W64.of_bytes n (fun i ->
        let va = Int64.add vaddr (Int64.of_int i) in
        let pa = translate env ctx ~vaddr:va ~write:false ~fetch:false ~at_rip in
        Pm.read8 env.mem pa)

(** Sized virtual write. *)
let write env ctx ~vaddr ~size ~value ~at_rip =
  let n = W64.bytes_of_size size in
  if not (crosses_page vaddr n) then begin
    let paddr = translate env ctx ~vaddr ~write:true ~fetch:false ~at_rip in
    Pm.write_sized env.mem paddr size value
  end
  else
    for i = 0 to n - 1 do
      let va = Int64.add vaddr (Int64.of_int i) in
      let pa = translate env ctx ~vaddr:va ~write:true ~fetch:false ~at_rip in
      Pm.write8 env.mem pa (W64.byte value i)
    done

(** Instruction byte fetch (for the decoder). *)
let fetch_byte env ctx ~at_rip vaddr =
  let paddr = translate env ctx ~vaddr ~write:false ~fetch:true ~at_rip in
  Pm.read8 env.mem paddr

(** MFN backing a code address (for basic-block-cache keys). *)
let code_mfn env ctx ~at_rip vaddr =
  let paddr = translate env ctx ~vaddr ~write:false ~fetch:true ~at_rip in
  Pm.mfn_of_paddr paddr

(** Copy a string into guest virtual memory (loader / kernel model use). *)
let write_string env ctx ~vaddr s ~at_rip =
  String.iteri
    (fun i c ->
      let va = Int64.add vaddr (Int64.of_int i) in
      let pa = translate env ctx ~vaddr:va ~write:true ~fetch:false ~at_rip in
      Pm.write8 env.mem pa (Char.code c))
    s

(** Read [n] bytes from guest virtual memory as a string. *)
let read_string env ctx ~vaddr n ~at_rip =
  String.init n (fun i ->
      let va = Int64.add vaddr (Int64.of_int i) in
      let pa = translate env ctx ~vaddr:va ~write:false ~fetch:false ~at_rip in
      Char.chr (Pm.read8 env.mem pa))
