(** The per-VCPU [Context] structure — "central to multi-processor support"
    (paper §4.4): all architectural registers, machine state registers,
    page table base and internal simulator state for one virtual CPU. Each
    core model commits into its VCPU's context; microcode assists and every
    other subsystem read and write it.

    Paravirtual control registers (our Xen-flavoured MSR substitutes):
    - cr1: kernel stack pointer loaded on user->kernel transitions (RSP0)
    - cr2: last page-fault address (read-only, set by hardware)
    - cr3: page table root MFN (writes flush the TLBs)
    - cr5: syscall entry point
    - cr6: IDT base (virtual address of a table of 8-byte handler
      pointers indexed by vector) *)

module Flags = Ptl_isa.Flags

type mode = User | Kernel

type t = {
  vcpu_id : int;
  (* Full uop-level architectural register file: GPRs, temporaries, flags
     slot, zero register, XMM, st0. Temporaries are architecturally
     committed like everything else (they are dead across instructions). *)
  regs : int64 array;
  mutable rip : int64;
  mutable flags : int;  (* condition codes + IF *)
  mutable mode : mode;
  mutable cr3 : int;  (* page table root MFN *)
  mutable cr2 : int64;  (* page fault linear address *)
  mutable kernel_rsp : int64;  (* cr1 *)
  mutable syscall_entry : int64;  (* cr5 *)
  mutable idt_base : int64;  (* cr6 *)
  mutable running : bool;  (* false while blocked in hlt *)
  pending_irqs : int Queue.t;
  (* Incremented on CR3 writes and invlpg so cores know to flush TLBs. *)
  mutable tlb_generation : int;
  (* Committed-instruction counter (architectural, read by rdpmc/ptlcall). *)
  mutable insns_committed : int;
}

let create ~vcpu_id =
  {
    vcpu_id;
    regs = Array.make Ptl_uop.Uop.num_arch_regs 0L;
    rip = 0L;
    flags = Flags.empty;
    mode = Kernel;
    cr3 = 0;
    cr2 = 0L;
    kernel_rsp = 0L;
    syscall_entry = 0L;
    idt_base = 0L;
    running = true;
    pending_irqs = Queue.create ();
    tlb_generation = 0;
    insns_committed = 0;
  }

let get_reg t r =
  if r = Ptl_uop.Uop.reg_zero then 0L
  else if r = Ptl_uop.Uop.reg_flags then Int64.of_int t.flags
  else t.regs.(r)

let set_reg t r v =
  if r = Ptl_uop.Uop.reg_zero then ()
  else if r = Ptl_uop.Uop.reg_flags then t.flags <- Int64.to_int v
  else t.regs.(r) <- v

let gpr t r = t.regs.(r)
let set_gpr t r v = t.regs.(r) <- v

let is_kernel t = t.mode = Kernel

(** Queue an external/virtual interrupt for delivery at the next
    instruction boundary (subject to IF). *)
let raise_irq t vector = Queue.push vector t.pending_irqs

let has_pending_irq t = not (Queue.is_empty t.pending_irqs)

(** Whether an interrupt could be taken right now. *)
let interruptible t = Flags.iflag t.flags && has_pending_irq t

let flush_tlbs t = t.tlb_generation <- t.tlb_generation + 1

(** Deep copy for checkpointing. The IRQ queue is copied by value. *)
let copy t =
  {
    t with
    regs = Array.copy t.regs;
    pending_irqs = Queue.copy t.pending_irqs;
  }

(** Restore [t] from [snapshot] in place (references to [t] stay valid). *)
let restore t ~snapshot =
  Array.blit snapshot.regs 0 t.regs 0 (Array.length t.regs);
  t.rip <- snapshot.rip;
  t.flags <- snapshot.flags;
  t.mode <- snapshot.mode;
  t.cr3 <- snapshot.cr3;
  t.cr2 <- snapshot.cr2;
  t.kernel_rsp <- snapshot.kernel_rsp;
  t.syscall_entry <- snapshot.syscall_entry;
  t.idt_base <- snapshot.idt_base;
  t.running <- snapshot.running;
  Queue.clear t.pending_irqs;
  Queue.iter (fun v -> Queue.push v t.pending_irqs) snapshot.pending_irqs;
  t.tlb_generation <- snapshot.tlb_generation + 1;
  t.insns_committed <- snapshot.insns_committed

(** Compare the architecturally visible state of two contexts; returns the
    list of differing components (used by co-simulation divergence checks,
    paper §2.3). Temporaries are ignored: they are dead between
    instructions. *)
let diff a b =
  let out = ref [] in
  let note fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  for r = 0 to 15 do
    if a.regs.(r) <> b.regs.(r) then
      note "%s: %#Lx vs %#Lx" (Ptl_isa.Regs.gpr_name r) a.regs.(r) b.regs.(r)
  done;
  for x = 0 to 15 do
    let ra = Ptl_uop.Uop.xmm x in
    if a.regs.(ra) <> b.regs.(ra) then note "xmm%d: %#Lx vs %#Lx" x a.regs.(ra) b.regs.(ra)
  done;
  if a.regs.(Ptl_uop.Uop.reg_st0) <> b.regs.(Ptl_uop.Uop.reg_st0) then
    note "st0: %#Lx vs %#Lx" a.regs.(Ptl_uop.Uop.reg_st0) b.regs.(Ptl_uop.Uop.reg_st0);
  if a.rip <> b.rip then note "rip: %#Lx vs %#Lx" a.rip b.rip;
  if a.flags land Flags.cc_mask <> b.flags land Flags.cc_mask then
    note "flags: %s vs %s" (Flags.to_string a.flags) (Flags.to_string b.flags);
  if a.mode <> b.mode then note "mode differs";
  if a.cr3 <> b.cr3 then note "cr3: %d vs %d" a.cr3 b.cr3;
  List.rev !out
