lib/arch/machine.ml: Char Context Env Int64 Ptl_isa Ptl_mem Seqcore String Vmem
