lib/arch/env.ml: Context Int64 Ptl_mem Ptl_stats Vmem
