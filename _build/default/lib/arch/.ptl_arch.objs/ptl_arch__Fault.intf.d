lib/arch/fault.mli:
