lib/arch/context.ml: Array Int64 List Printf Ptl_isa Ptl_uop Queue
