lib/arch/assists.ml: Context Env Fault Int64 Printf Ptl_isa Ptl_uop Ptl_util Queue Vmem W64
