lib/arch/seqcore.ml: Array Assists Context Env Fault Int64 List Ptl_mem Ptl_stats Ptl_uop Ptl_util Vmem W64
