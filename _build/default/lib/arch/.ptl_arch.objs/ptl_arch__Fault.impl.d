lib/arch/fault.ml: Int64 Printf
