lib/arch/vmem.ml: Char Context Fault Int64 Ptl_mem Ptl_util String W64
