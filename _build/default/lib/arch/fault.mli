(** Architectural exceptions with their x86 vector numbers. Cores catch
    [Guest_fault] and invoke the precise-exception microcode at the
    boundary of the faulting instruction (the atomic-commit rule: all of
    its uops are discarded first). *)

type kind =
  | Divide_error  (* #DE, vector 0 *)
  | Invalid_opcode  (* #UD, vector 6 *)
  | General_protection  (* #GP, vector 13 *)
  | Page_fault of {
      vaddr : int64;
      not_present : bool;
      write : bool;
      user : bool;
      fetch : bool;
    }  (* #PF, vector 14 *)

type t = { kind : kind; at_rip : int64 }

exception Guest_fault of t

val vector : kind -> int

(** The x86 page-fault error code bits (P/W/U/I). *)
val error_code : kind -> int64

val to_string : t -> string
val raise_fault : kind -> at_rip:int64 -> 'a
