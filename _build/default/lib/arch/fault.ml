(** Architectural exceptions (faults) with their x86 vector numbers.

    Faults detected while executing uops are raised as [Guest_fault]; the
    owning core catches them and invokes the precise-exception microcode in
    {!Context} at the boundary of the faulting x86 instruction (the paper's
    atomic-commit rule: all uops of the instruction are discarded before
    the fault is delivered). *)

type kind =
  | Divide_error (* #DE, vector 0 *)
  | Invalid_opcode (* #UD, vector 6 *)
  | General_protection (* #GP, vector 13 *)
  | Page_fault of { vaddr : int64; not_present : bool; write : bool; user : bool; fetch : bool }
    (* #PF, vector 14 *)

type t = { kind : kind; at_rip : int64 }

exception Guest_fault of t

let vector = function
  | Divide_error -> 0
  | Invalid_opcode -> 6
  | General_protection -> 13
  | Page_fault _ -> 14

(** The x86 page-fault error code: bit0 = protection (1) vs not-present
    (0), bit1 = write, bit2 = user mode, bit4 = instruction fetch. *)
let error_code = function
  | Divide_error | Invalid_opcode -> 0L
  | General_protection -> 0L
  | Page_fault { not_present; write; user; fetch; _ } ->
    let b c n = if c then 1 lsl n else 0 in
    Int64.of_int (b (not not_present) 0 lor b write 1 lor b user 2 lor b fetch 4)

let to_string t =
  let k =
    match t.kind with
    | Divide_error -> "#DE"
    | Invalid_opcode -> "#UD"
    | General_protection -> "#GP"
    | Page_fault { vaddr; not_present; write; user; fetch } ->
      Printf.sprintf "#PF[%#Lx%s%s%s%s]" vaddr
        (if not_present then " not-present" else " prot")
        (if write then " write" else " read")
        (if user then " user" else " kernel")
        (if fetch then " ifetch" else "")
  in
  Printf.sprintf "%s at rip=%#Lx" k t.at_rip

let raise_fault kind ~at_rip = raise (Guest_fault { kind; at_rip })
