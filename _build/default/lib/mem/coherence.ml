(** Multi-core cache coherence.

    The paper's released PTLsim models "instant visibility" coherence —
    no delay on line movement between cores — and leaves a MOESI model
    with real transfer overhead as future work (§4.4, §7). Both are
    implemented here behind one interface: a directory tracks each line's
    state in every core and charges latency for cache-to-cache transfers
    and invalidations; the instant model tracks nothing and charges
    nothing. The multi-core driver installs the resulting penalty function
    into each core's {!Hierarchy}. *)

module Stats = Ptl_stats.Statstree

type state = M | O | E | S | I

type mode = Instant | Moesi of { transfer_latency : int; invalidate_latency : int }

type t = {
  mode : mode;
  ncores : int;
  line_size : int;
  (* line address -> per-core state *)
  directory : (int, state array) Hashtbl.t;
  transfers : Stats.counter;
  invalidations : Stats.counter;
  bus_transactions : Stats.counter;
}

let create stats ~mode ~ncores ~line_size =
  {
    mode;
    ncores;
    line_size;
    directory = Hashtbl.create 4096;
    transfers = Stats.counter stats "coherence.transfers";
    invalidations = Stats.counter stats "coherence.invalidations";
    bus_transactions = Stats.counter stats "coherence.bus_transactions";
  }

let line_of t paddr = Ptl_util.Bitops.align_down paddr t.line_size

let states t line =
  match Hashtbl.find_opt t.directory line with
  | Some a -> a
  | None ->
    let a = Array.make t.ncores I in
    Hashtbl.add t.directory line a;
    a

let state t ~core ~paddr = (states t (line_of t paddr)).(core)

(** Latency penalty (cycles) for [core] missing on [paddr]. Updates the
    directory per the MOESI protocol. *)
let miss_penalty t ~core ~paddr ~write =
  match t.mode with
  | Instant -> 0
  | Moesi { transfer_latency; invalidate_latency } ->
    Stats.incr t.bus_transactions;
    let st = states t (line_of t paddr) in
    let penalty = ref 0 in
    if write then begin
      (* Read-for-ownership: everyone else goes to I. *)
      Array.iteri
        (fun c s ->
          if c <> core && s <> I then begin
            Stats.incr t.invalidations;
            penalty := max !penalty invalidate_latency;
            (match s with
            | M | O ->
              Stats.incr t.transfers;
              penalty := max !penalty transfer_latency
            | E | S | I -> ());
            st.(c) <- I
          end)
        st;
      st.(core) <- M
    end
    else begin
      (* Read: a dirty owner supplies the line and keeps it in O. *)
      let owner = ref None in
      Array.iteri
        (fun c s ->
          if c <> core then
            match s with
            | M ->
              st.(c) <- O;
              owner := Some c
            | O -> owner := Some c
            | E -> st.(c) <- S
            | S | I -> ())
        st;
      (match !owner with
      | Some _ ->
        Stats.incr t.transfers;
        penalty := transfer_latency
      | None -> ());
      let anyone_else = Array.exists (fun s -> s <> I) (Array.mapi (fun c s -> if c = core then I else s) st) in
      st.(core) <- (if anyone_else then S else E)
    end;
    !penalty

(** Hits on writes still need an upgrade if the line is shared. Returns the
    penalty and whether other copies were invalidated. *)
let write_hit_penalty t ~core ~paddr =
  match t.mode with
  | Instant -> 0
  | Moesi { invalidate_latency; _ } ->
    let st = states t (line_of t paddr) in
    (match st.(core) with
    | M | E ->
      st.(core) <- M;
      0
    | O | S | I ->
      Stats.incr t.bus_transactions;
      let penalty = ref 0 in
      Array.iteri
        (fun c s ->
          if c <> core && s <> I then begin
            Stats.incr t.invalidations;
            penalty := invalidate_latency;
            st.(c) <- I
          end)
        st;
      st.(core) <- M;
      !penalty)

(** Record that [core] filled [paddr] on a read without contention (used
    when no directory update happened through [miss_penalty]). *)
let note_fill t ~core ~paddr ~write =
  match t.mode with
  | Instant -> ()
  | Moesi _ ->
    let st = states t (line_of t paddr) in
    if st.(core) = I then st.(core) <- (if write then M else S)

(** Drop a core's copy (eviction). *)
let note_evict t ~core ~paddr =
  match t.mode with
  | Instant -> ()
  | Moesi _ ->
    let st = states t (line_of t paddr) in
    st.(core) <- I

(** Invariant check for tests: at most one M/E owner, M/E exclusive with
    any other non-I state; O coexists only with S/I. *)
let check_invariants t =
  Hashtbl.fold
    (fun _line st ok ->
      ok
      &&
      let m = Array.fold_left (fun a s -> a + if s = M then 1 else 0) 0 st in
      let e = Array.fold_left (fun a s -> a + if s = E then 1 else 0) 0 st in
      let o = Array.fold_left (fun a s -> a + if s = O then 1 else 0) 0 st in
      let s_ = Array.fold_left (fun a s -> a + if s = S then 1 else 0) 0 st in
      let nonI = m + e + o + s_ in
      m <= 1 && e <= 1 && o <= 1
      && (m = 0 || nonI = 1)
      && (e = 0 || nonI = 1))
    t.directory true
