lib/mem/phys_mem.mli: Bytes Ptl_util
