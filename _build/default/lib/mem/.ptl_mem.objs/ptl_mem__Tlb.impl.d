lib/mem/tlb.ml: Array Int64 Option Pagetable Phys_mem
