lib/mem/tlb.mli:
