lib/mem/coherence.ml: Array Hashtbl Ptl_stats Ptl_util
