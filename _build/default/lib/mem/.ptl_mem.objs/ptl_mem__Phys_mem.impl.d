lib/mem/phys_mem.ml: Bytes Char Hashtbl Int64 Ptl_util String
