lib/mem/pagetable.ml: Int64 List Phys_mem
