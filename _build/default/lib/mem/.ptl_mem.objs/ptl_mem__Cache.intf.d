lib/mem/cache.mli: Ptl_stats
