lib/mem/cache.ml: Array Bitops Hashtbl Ptl_stats Ptl_util Rng
