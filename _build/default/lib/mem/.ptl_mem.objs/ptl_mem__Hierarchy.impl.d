lib/mem/hierarchy.ml: Cache Hashtbl List Option Ptl_stats
