(** The 4-level x86-64 page table tree and its hardware walker.

    Page table entries are 8 bytes with the real x86-64 bit layout
    (present, writable, user, accessed, dirty, NX). The walker performs the
    chain of four dependent loads the paper describes (§4.3) and reports
    the physical address of every PTE it touched so the timing model can
    inject those loads into the cache hierarchy. Accessed/dirty tracking
    bits are set during the walk, exactly as x86 microcode/hardware does
    (§2.1). *)

let pte_p = 0x1L (* present *)
let pte_w = 0x2L (* writable *)
let pte_u = 0x4L (* user-accessible *)
let pte_a = 0x20L (* accessed *)
let pte_d = 0x40L (* dirty *)
let pte_nx = Int64.min_int (* bit 63: no-execute *)

let levels = 4
let index_bits = 9

(** Virtual address bits 12..47 are translated; the rest must be the sign
    extension of bit 47 (canonical form). *)
let canonical vaddr =
  let top = Int64.shift_right vaddr 47 in
  top = 0L || top = -1L

let vpn_index vaddr level =
  (* level 3 = root (bits 39-47) ... level 0 = leaf (bits 12-20) *)
  Int64.to_int
    (Int64.logand
       (Int64.shift_right_logical vaddr (Phys_mem.page_shift + (index_bits * level)))
       0x1FFL)

let make_pte ~mfn ~writable ~user ~nx =
  let v = Int64.of_int (mfn lsl Phys_mem.page_shift) in
  let v = Int64.logor v pte_p in
  let v = if writable then Int64.logor v pte_w else v in
  let v = if user then Int64.logor v pte_u else v in
  if nx then Int64.logor v pte_nx else v

let pte_mfn pte =
  Int64.to_int (Int64.shift_right_logical pte Phys_mem.page_shift) land 0xFFFFFFFFF

(** Why a translation failed; mirrors the x86 page-fault error code. *)
type fault = {
  fault_vaddr : int64;
  not_present : bool;  (* true: P bit clear; false: protection violation *)
  on_write : bool;
  on_user : bool;
  on_exec : bool;
}

(** A successful translation. [pte_addrs] lists the physical address of each
    PTE read, root first — the walker's four dependent loads. *)
type translation = {
  mfn : int;
  writable : bool;
  user : bool;
  nx : bool;
  pte_addrs : int list;
}

(** Walk the tree rooted at [cr3_mfn] for [vaddr]. [write]/[user]/[exec]
    describe the access being performed (used for permission checks and
    dirty-bit setting). When [set_ad] is true (hardware behaviour) the
    accessed bits of every level and the dirty bit of the leaf are updated
    in memory. *)
let walk mem ~cr3_mfn ~vaddr ~write ~user ~exec ?(set_ad = true) () :
    (translation, fault) result =
  let fail ~not_present =
    Error { fault_vaddr = vaddr; not_present; on_write = write; on_user = user; on_exec = exec }
  in
  if not (canonical vaddr) then fail ~not_present:true
  else begin
    let rec go level table_mfn pte_addrs =
      let idx = vpn_index vaddr level in
      let pte_addr = Phys_mem.paddr_of_mfn table_mfn + (8 * idx) in
      let pte = Phys_mem.read64 mem pte_addr in
      let pte_addrs = pte_addr :: pte_addrs in
      if Int64.logand pte pte_p = 0L then fail ~not_present:true
      else begin
        (* Permission bits are checked at every level on x86-64. *)
        if write && Int64.logand pte pte_w = 0L then fail ~not_present:false
        else if user && Int64.logand pte pte_u = 0L then fail ~not_present:false
        else if exec && level = 0 && Int64.logand pte pte_nx <> 0L then
          fail ~not_present:false
        else begin
          if set_ad then begin
            let pte' = Int64.logor pte pte_a in
            let pte' =
              if level = 0 && write then Int64.logor pte' pte_d else pte'
            in
            if pte' <> pte then Phys_mem.write64 mem pte_addr pte'
          end;
          if level = 0 then
            Ok
              {
                mfn = pte_mfn pte;
                writable = Int64.logand pte pte_w <> 0L;
                user = Int64.logand pte pte_u <> 0L;
                nx = Int64.logand pte pte_nx <> 0L;
                pte_addrs = List.rev pte_addrs;
              }
          else go (level - 1) (pte_mfn pte) pte_addrs
        end
      end
    in
    go (levels - 1) cr3_mfn []
  end

(** Install a translation [vaddr -> mfn], allocating intermediate tables
    with [alloc] as needed (the guest-kernel/hypervisor MMU-update path). *)
let map mem ~cr3_mfn ~vaddr ~mfn ~writable ~user ?(nx = false) ~alloc () =
  if not (canonical vaddr) then invalid_arg "Pagetable.map: non-canonical";
  let rec go level table_mfn =
    let idx = vpn_index vaddr level in
    let pte_addr = Phys_mem.paddr_of_mfn table_mfn + (8 * idx) in
    if level = 0 then Phys_mem.write64 mem pte_addr (make_pte ~mfn ~writable ~user ~nx)
    else begin
      let pte = Phys_mem.read64 mem pte_addr in
      let next_mfn =
        if Int64.logand pte pte_p = 0L then begin
          let fresh = alloc () in
          (* Intermediate entries are writable+user; the leaf governs. *)
          Phys_mem.write64 mem pte_addr
            (make_pte ~mfn:fresh ~writable:true ~user:true ~nx:false);
          fresh
        end
        else pte_mfn pte
      in
      go (level - 1) next_mfn
    end
  in
  go (levels - 1) cr3_mfn

(** Remove the translation for [vaddr] (leaf only; tables are not freed). *)
let unmap mem ~cr3_mfn ~vaddr =
  let rec go level table_mfn =
    let idx = vpn_index vaddr level in
    let pte_addr = Phys_mem.paddr_of_mfn table_mfn + (8 * idx) in
    let pte = Phys_mem.read64 mem pte_addr in
    if Int64.logand pte pte_p = 0L then ()
    else if level = 0 then Phys_mem.write64 mem pte_addr 0L
    else go (level - 1) (pte_mfn pte)
  in
  go (levels - 1) cr3_mfn

(** Read-only probe used by debuggers and the functional reference: no A/D
    updates, no permission checks beyond presence. *)
let probe mem ~cr3_mfn ~vaddr =
  match walk mem ~cr3_mfn ~vaddr ~write:false ~user:false ~exec:false ~set_ad:false () with
  | Ok tr -> Some tr.mfn
  | Error _ -> None

(** Translate a virtual address to physical, or a fault. *)
let to_paddr translation vaddr =
  Phys_mem.paddr_of_mfn translation.mfn + Int64.to_int (Int64.logand vaddr (Int64.of_int Phys_mem.page_mask))
