lib/bpred/predictor.ml: Array Bitops Int64 Ptl_stats Ptl_util
