lib/bpred/predictor.mli: Ptl_stats
