(** The minios file system: a flat ramfs with directories-by-prefix and a
    disk model behind it.

    File *content* initially lives "on disk" (host-side strings). The first
    access to a 4 KiB block pays the disk latency — the owning process
    blocks, a disk-completion event fires later, and the block is DMA'd
    into page-cache pages allocated from guest kernel memory. Subsequent
    reads copy page-cache -> user buffer with real guest kernel code. This
    mirrors how the paper's rsync run pages its file set in from the
    RAM-resident disk image (§5: "the disk image was loaded into RAM",
    still giving a distinct startup/page-in phase in Figure 2). *)

type file = {
  name : string;
  mutable data : Bytes.t;  (* disk contents (authoritative) *)
  (* guest *kernel virtual* address of each in-core 4 KiB block, or -1;
     the kernel translates to physical when DMAing *)
  mutable cache_paddr : int array;
  mutable pending_blocks : int list;  (* blocks with an in-flight disk read *)
  mutable size : int;
}

type t = {
  files : (string, file) Hashtbl.t;
  mutable order : string list;  (* creation order, for readdir *)
}

let create () = { files = Hashtbl.create 64; order = [] }

let block_size = Ptl_mem.Phys_mem.page_size

let blocks_of_size size = (size + block_size - 1) / block_size

let add_file t ~name ~contents =
  let size = String.length contents in
  let f =
    {
      name;
      data = Bytes.of_string contents;
      cache_paddr = Array.make (max 1 (blocks_of_size size)) (-1);
      pending_blocks = [];
      size;
    }
  in
  Hashtbl.replace t.files name f;
  if not (List.mem name t.order) then t.order <- t.order @ [ name ]

let find t name = Hashtbl.find_opt t.files name

let exists t name = Hashtbl.mem t.files name

(** Create an empty (or truncate an existing) file. *)
let creat t name =
  match find t name with
  | Some f ->
    f.size <- 0;
    f.data <- Bytes.create 0;
    Array.fill f.cache_paddr 0 (Array.length f.cache_paddr) (-1)
  | None -> add_file t ~name ~contents:""

(** Files whose name starts with [prefix], in creation order. *)
let list_dir t ~prefix =
  List.filter
    (fun n -> String.length n >= String.length prefix && String.sub n 0 (String.length prefix) = prefix)
    t.order

let size t name = match find t name with Some f -> Some f.size | None -> None

(** Is block [blk] of [f] resident in the page cache? *)
let block_resident (f : file) blk =
  blk < Array.length f.cache_paddr && f.cache_paddr.(blk) >= 0

(** DMA block [blk] from disk into the page-cache frame at [paddr]
    (host-side copy: this is the disk controller writing guest memory). *)
let dma_block_in mem (f : file) blk ~paddr =
  let off = blk * block_size in
  let n = min block_size (max 0 (f.size - off)) in
  for i = 0 to n - 1 do
    Ptl_mem.Phys_mem.write8 mem (paddr + i) (Char.code (Bytes.get f.data (off + i)))
  done;
  (* zero-fill the tail of a partial block *)
  for i = n to block_size - 1 do
    Ptl_mem.Phys_mem.write8 mem (paddr + i) 0
  done;
  ()

(** Write-back [n] bytes from the page-cache frame into the disk image
    (host-side, on file write completion). *)
let writeback_block mem (f : file) blk ~paddr ~upto =
  let off = blk * block_size in
  if off + upto > f.size then begin
    let bigger = Bytes.make (off + upto) '\x00' in
    Bytes.blit f.data 0 bigger 0 (Bytes.length f.data);
    f.data <- bigger;
    f.size <- off + upto
  end;
  for i = 0 to upto - 1 do
    Bytes.set f.data (off + i)
      (Char.chr (Ptl_mem.Phys_mem.read8 mem (paddr + i)))
  done

(** Ensure the cache_paddr array covers block [blk]. *)
let ensure_blocks (f : file) blk =
  if blk >= Array.length f.cache_paddr then begin
    let bigger = Array.make (blk + 1) (-1) in
    Array.blit f.cache_paddr 0 bigger 0 (Array.length f.cache_paddr);
    f.cache_paddr <- bigger
  end
