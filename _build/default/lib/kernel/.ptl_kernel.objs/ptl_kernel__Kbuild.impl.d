lib/kernel/kbuild.ml: Abi Int64 List Ptl_isa Ptl_util W64
