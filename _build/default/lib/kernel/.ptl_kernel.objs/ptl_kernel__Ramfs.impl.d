lib/kernel/ramfs.ml: Array Bytes Char Hashtbl List Ptl_mem String
