lib/kernel/kernel.ml: Abi Array Buffer Char Hashtbl Int64 Kbuild List Logs Option Printf Ptl_arch Ptl_isa Ptl_mem Ptl_stats Ptl_util Queue Ramfs String W64
