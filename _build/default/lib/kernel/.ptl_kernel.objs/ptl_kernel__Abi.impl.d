lib/kernel/abi.ml:
