(** Binary opcode assignments of the x86lite-64 encoding.

    One-byte primary opcodes, with 0x0F escaping to a secondary page (just
    like real x86). The paper's [ptlcall] breakout opcode is 0x0F 0x37,
    matching PTLsim exactly. Prefix bytes: 0xF0 = LOCK, 0xF3 = REP. *)

let pfx_lock = 0xF0
let pfx_rep = 0xF3

let nop = 0x00

(* ALU group: opcode = alu_base + operation index (Add..Cmp). *)
let alu_base = 0x01
let test = 0x09
let mov = 0x0A
let movabs = 0x0B
let lea = 0x0C
let movzx = 0x0D
let movsx = 0x0E
let escape = 0x0F

(* Unary group: opcode = unary_base + operation index (Not..Dec). *)
let unary_base = 0x10
(* Shift group: opcode = shift_base + operation index (Shl..Ror). *)
let shift_base = 0x14
let imul2 = 0x19
(* Mul/div group: opcode = muldiv_base + operation index (Mul..Idiv). *)
let muldiv_base = 0x1A
let push = 0x1E
let pop = 0x1F
let call = 0x20
let ret = 0x21
let jmp = 0x22
let jcc = 0x23
let jmp_ind = 0x24
let call_ind = 0x25
let setcc = 0x26
let cmovcc = 0x27
let xchg = 0x28
let xadd = 0x29
let cmpxchg = 0x2A
(* Bit test group: opcode = bittest_base + operation index (Bt..Btc). *)
let bittest_base = 0x2B
let movs = 0x2F
let stos = 0x30
let lods = 0x31
let hlt = 0x32
let syscall = 0x33
let sysret = 0x34
let int_ = 0x35
let iret = 0x36
let pushf = 0x37
let popf = 0x38
let cli = 0x39
let sti = 0x3A
let pause = 0x3B

(* Secondary page (after 0x0F). *)
let x_rdtsc = 0x01
let x_rdpmc = 0x02
let x_cpuid = 0x03
let x_mov_to_cr = 0x04
let x_mov_from_cr = 0x05
let x_invlpg = 0x06
let x_kcall = 0x07
let x_fld = 0x10
let x_fst = 0x11
(* FP arithmetic group: opcode = x_fp_base + operation index (Fadd..Fdiv). *)
let x_fp_base = 0x12
let x_sse_load = 0x20
let x_sse_store = 0x21
let x_sse_mov = 0x22
(* SSE arithmetic group: opcode = x_sse_base + operation index (Addsd..Divsd). *)
let x_sse_base = 0x23
let x_cvtsi2sd = 0x28
let x_cvtsd2si = 0x29
let x_comisd = 0x2A
let x_ptlcall = 0x37

(* Field encodings for the "no register" marker in memory operands. *)
let no_reg = 0xFF
