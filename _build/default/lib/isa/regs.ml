(** Architectural register file layout of the x86lite-64 guest ISA.

    Sixteen 64-bit general purpose registers in the x86-64 encoding order,
    sixteen SSE-style scalar-double registers, and eight x87-style stack
    registers (addressed relative to a top-of-stack pointer kept in the
    VCPU context, as on real x86). *)

type gpr = int (* 0..15 *)
type xmm = int (* 0..15 *)

let num_gprs = 16
let num_xmms = 16
let num_fprs = 8

(* x86-64 encoding order. *)
let rax = 0
let rcx = 1
let rdx = 2
let rbx = 3
let rsp = 4
let rbp = 5
let rsi = 6
let rdi = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

let gpr_names =
  [| "rax"; "rcx"; "rdx"; "rbx"; "rsp"; "rbp"; "rsi"; "rdi";
     "r8"; "r9"; "r10"; "r11"; "r12"; "r13"; "r14"; "r15" |]

let gpr_name r =
  if r < 0 || r >= num_gprs then invalid_arg "Regs.gpr_name";
  gpr_names.(r)

let gpr_of_name name =
  let rec go i =
    if i >= num_gprs then invalid_arg ("Regs.gpr_of_name: " ^ name)
    else if String.equal gpr_names.(i) name then i
    else go (i + 1)
  in
  go 0

let xmm_name x = Printf.sprintf "xmm%d" x
let valid_gpr r = r >= 0 && r < num_gprs
let valid_xmm x = x >= 0 && x < num_xmms
