lib/isa/disasm.ml: Buffer Flags Insn List Printf Ptl_util Regs String W64
