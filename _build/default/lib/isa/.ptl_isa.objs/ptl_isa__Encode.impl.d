lib/isa/encode.ml: Bitops Buffer Char Flags Insn Int64 Opcodes Printf Ptl_util String W64
