lib/isa/insn.ml: Flags List Ptl_util Regs W64
