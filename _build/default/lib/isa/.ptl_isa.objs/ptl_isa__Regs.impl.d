lib/isa/regs.ml: Array Printf String
