lib/isa/opcodes.ml:
