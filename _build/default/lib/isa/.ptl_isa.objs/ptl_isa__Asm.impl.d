lib/isa/asm.ml: Array Bitops Buffer Char Encode Hashtbl Insn Int64 List Printf Ptl_util String
