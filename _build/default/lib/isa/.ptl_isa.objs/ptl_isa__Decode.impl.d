lib/isa/decode.ml: Char Encode Flags Insn Int64 Opcodes Ptl_util Regs String W64
