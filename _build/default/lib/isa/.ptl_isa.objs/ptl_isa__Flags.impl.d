lib/isa/flags.ml: Printf Ptl_util String W64
