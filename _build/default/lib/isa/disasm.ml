(** Textual disassembly of x86lite-64 instructions (AT&T-flavoured Intel
    syntax: destination first), used by logs, debug dumps and the
    co-simulation divergence reports. *)

open Ptl_util

let mem_to_string (m : Insn.mem) =
  let buf = Buffer.create 16 in
  Buffer.add_char buf '[';
  let parts = ref [] in
  (match m.base with Some r -> parts := Regs.gpr_name r :: !parts | None -> ());
  (match m.index with
  | Some r ->
    let s = Regs.gpr_name r in
    parts := (if m.scale = 1 then s else Printf.sprintf "%s*%d" s m.scale) :: !parts
  | None -> ());
  if m.disp <> 0L || !parts = [] then
    parts := Printf.sprintf "%#Lx" m.disp :: !parts;
  Buffer.add_string buf (String.concat "+" (List.rev !parts));
  Buffer.add_char buf ']';
  Buffer.contents buf

let rm_to_string = function
  | Insn.Reg r -> Regs.gpr_name r
  | Insn.Mem m -> mem_to_string m

let src_to_string = function
  | Insn.RM rm -> rm_to_string rm
  | Insn.Imm v -> Printf.sprintf "%#Lx" v

let sz = W64.size_to_string

let two name size dst src =
  Printf.sprintf "%s%s %s, %s" name (sz size) (rm_to_string dst) (src_to_string src)

let rec to_string (insn : Insn.t) =
  match insn with
  | Insn.Nop -> "nop"
  | Insn.Alu (op, size, dst, src) -> two (Insn.alu_name op) size dst src
  | Insn.Test (size, dst, src) -> two "test" size dst src
  | Insn.Mov (size, dst, src) -> two "mov" size dst src
  | Insn.Movabs (r, v) -> Printf.sprintf "movabs %s, %#Lx" (Regs.gpr_name r) v
  | Insn.Lea (r, m) -> Printf.sprintf "lea %s, %s" (Regs.gpr_name r) (mem_to_string m)
  | Insn.Movzx (d, s, r, rm) ->
    Printf.sprintf "movzx%s%s %s, %s" (sz d) (sz s) (Regs.gpr_name r) (rm_to_string rm)
  | Insn.Movsx (d, s, r, rm) ->
    Printf.sprintf "movsx%s%s %s, %s" (sz d) (sz s) (Regs.gpr_name r) (rm_to_string rm)
  | Insn.Unary (op, size, dst) ->
    Printf.sprintf "%s%s %s" (Insn.unary_name op) (sz size) (rm_to_string dst)
  | Insn.Shift (op, size, dst, count) ->
    Printf.sprintf "%s%s %s, %s" (Insn.shift_name op) (sz size) (rm_to_string dst)
      (match count with Insn.ImmC n -> string_of_int n | Insn.Cl -> "cl")
  | Insn.Imul2 (size, r, rm) ->
    Printf.sprintf "imul%s %s, %s" (sz size) (Regs.gpr_name r) (rm_to_string rm)
  | Insn.Muldiv (op, size, rm) ->
    Printf.sprintf "%s%s %s" (Insn.muldiv_name op) (sz size) (rm_to_string rm)
  | Insn.Push src -> Printf.sprintf "push %s" (src_to_string src)
  | Insn.Pop dst -> Printf.sprintf "pop %s" (rm_to_string dst)
  | Insn.Call t -> Printf.sprintf "call %#Lx" t
  | Insn.CallInd rm -> Printf.sprintf "call *%s" (rm_to_string rm)
  | Insn.Ret -> "ret"
  | Insn.Jmp t -> Printf.sprintf "jmp %#Lx" t
  | Insn.JmpInd rm -> Printf.sprintf "jmp *%s" (rm_to_string rm)
  | Insn.Jcc (c, t) -> Printf.sprintf "j%s %#Lx" (Flags.cond_name c) t
  | Insn.Setcc (c, dst) -> Printf.sprintf "set%s %s" (Flags.cond_name c) (rm_to_string dst)
  | Insn.Cmovcc (c, size, r, rm) ->
    Printf.sprintf "cmov%s%s %s, %s" (Flags.cond_name c) (sz size) (Regs.gpr_name r)
      (rm_to_string rm)
  | Insn.Xchg (size, dst, r) ->
    Printf.sprintf "xchg%s %s, %s" (sz size) (rm_to_string dst) (Regs.gpr_name r)
  | Insn.Xadd (size, dst, r) ->
    Printf.sprintf "xadd%s %s, %s" (sz size) (rm_to_string dst) (Regs.gpr_name r)
  | Insn.Cmpxchg (size, dst, r) ->
    Printf.sprintf "cmpxchg%s %s, %s" (sz size) (rm_to_string dst) (Regs.gpr_name r)
  | Insn.Bittest (op, size, dst, src) ->
    Printf.sprintf "%s%s %s, %s" (Insn.bittest_name op) (sz size) (rm_to_string dst)
      (match src with Insn.Breg r -> Regs.gpr_name r | Insn.Bimm n -> string_of_int n)
  | Insn.Movs (size, rep) -> Printf.sprintf "%smovs%s" (if rep then "rep " else "") (sz size)
  | Insn.Stos (size, rep) -> Printf.sprintf "%sstos%s" (if rep then "rep " else "") (sz size)
  | Insn.Lods (size, rep) -> Printf.sprintf "%slods%s" (if rep then "rep " else "") (sz size)
  | Insn.Hlt -> "hlt"
  | Insn.Syscall -> "syscall"
  | Insn.Sysret -> "sysret"
  | Insn.Int n -> Printf.sprintf "int %#x" n
  | Insn.Iret -> "iret"
  | Insn.Pushf -> "pushf"
  | Insn.Popf -> "popf"
  | Insn.Cli -> "cli"
  | Insn.Sti -> "sti"
  | Insn.Pause -> "pause"
  | Insn.Ptlcall -> "ptlcall"
  | Insn.Kcall -> "kcall"
  | Insn.Rdtsc -> "rdtsc"
  | Insn.Rdpmc -> "rdpmc"
  | Insn.Cpuid -> "cpuid"
  | Insn.MovToCr (cr, r) -> Printf.sprintf "mov cr%d, %s" cr (Regs.gpr_name r)
  | Insn.MovFromCr (cr, r) -> Printf.sprintf "mov %s, cr%d" (Regs.gpr_name r) cr
  | Insn.Invlpg m -> Printf.sprintf "invlpg %s" (mem_to_string m)
  | Insn.Fld m -> Printf.sprintf "fld %s" (mem_to_string m)
  | Insn.Fst m -> Printf.sprintf "fstp %s" (mem_to_string m)
  | Insn.Fp (op, m) -> Printf.sprintf "%s %s" (Insn.fpop_name op) (mem_to_string m)
  | Insn.SseLoad (x, m) -> Printf.sprintf "movsd %s, %s" (Regs.xmm_name x) (mem_to_string m)
  | Insn.SseStore (m, x) -> Printf.sprintf "movsd %s, %s" (mem_to_string m) (Regs.xmm_name x)
  | Insn.SseMov (xd, xs) -> Printf.sprintf "movsd %s, %s" (Regs.xmm_name xd) (Regs.xmm_name xs)
  | Insn.Sse (op, xd, xs) ->
    Printf.sprintf "%s %s, %s" (Insn.sse2_name op) (Regs.xmm_name xd) (Regs.xmm_name xs)
  | Insn.Cvtsi2sd (x, r) -> Printf.sprintf "cvtsi2sd %s, %s" (Regs.xmm_name x) (Regs.gpr_name r)
  | Insn.Cvtsd2si (r, x) -> Printf.sprintf "cvtsd2si %s, %s" (Regs.gpr_name r) (Regs.xmm_name x)
  | Insn.Comisd (xa, xb) -> Printf.sprintf "comisd %s, %s" (Regs.xmm_name xa) (Regs.xmm_name xb)
  | Insn.Locked body -> "lock " ^ to_string body
