(** Binary decoder: byte stream to instruction AST.

    The decoder pulls bytes through a fetch callback so the caller controls
    where code comes from (flat buffers in tests, guest virtual memory with
    page-crossing and fault semantics in the simulator). Decode failures
    raise [Invalid_opcode], which the cores turn into the #UD exception. *)

open Ptl_util
module Op = Opcodes

exception Invalid_opcode of int64

(** Decoder state over a byte fetch function. *)
type cursor = { fetch : int64 -> int; start : int64; mutable pos : int64 }

let cursor fetch rip = { fetch; start = rip; pos = rip }

let next cur =
  let b = cur.fetch cur.pos land 0xFF in
  cur.pos <- Int64.add cur.pos 1L;
  b

let consumed cur = Int64.to_int (Int64.sub cur.pos cur.start)

let bad cur = raise (Invalid_opcode cur.start)

let int_le cur n =
  let rec go i acc =
    if i >= n then acc
    else
      let b = Int64.of_int (next cur) in
      go (i + 1) (Int64.logor acc (Int64.shift_left b (8 * i)))
  in
  go 0 0L

let sint_le cur n = W64.sign_extend (W64.size_of_bytes n) (int_le cur n)

let size_of_code cur = function
  | 0 -> W64.B1
  | 1 -> W64.B2
  | 2 -> W64.B4
  | 3 -> W64.B8
  | _ -> bad cur

let reg cur =
  let r = next cur in
  if not (Regs.valid_gpr r) then bad cur;
  r

let xmm cur =
  let x = next cur in
  if not (Regs.valid_xmm x) then bad cur;
  x

let mem cur : Insn.mem =
  let base = next cur in
  let index = next cur in
  let sib = next cur in
  let scale_log = sib land 0x03 in
  if sib land 0x7C <> 0 then bad cur;
  let disp = if sib land 0x80 <> 0 then sint_le cur 1 else sint_le cur 4 in
  let opt_reg b =
    if b = Op.no_reg then None
    else if Regs.valid_gpr b then Some b
    else bad cur
  in
  { base = opt_reg base; index = opt_reg index; scale = 1 lsl scale_log; disp }

let rm_of_kind cur kind : Insn.rm =
  match kind with
  | 0 -> Insn.Reg (reg cur)
  | 1 -> Insn.Mem (mem cur)
  | _ -> bad cur

(* The two-operand form byte shared by ALU / TEST / MOV. *)
let rm_src cur : W64.size * Insn.rm * Insn.src =
  let form = next cur in
  let size = size_of_code cur (form land 3) in
  let dst_kind = (form lsr 2) land 3 in
  let src_kind = (form lsr 4) land 3 in
  if form land lnot 0x3F <> 0 then bad cur;
  let dst = rm_of_kind cur dst_kind in
  let src =
    match src_kind with
    | 0 -> Insn.RM (Insn.Reg (reg cur))
    | 1 ->
      (match dst with Insn.Mem _ -> bad cur | Insn.Reg _ -> ());
      Insn.RM (Insn.Mem (mem cur))
    | 2 -> Insn.Imm (sint_le cur (Encode.imm_bytes size))
    | 3 -> Insn.Imm (sint_le cur 1)
    | _ -> bad cur
  in
  (size, dst, src)

let rel32_target cur =
  let rel = sint_le cur 4 in
  Int64.add cur.pos rel

let rel8_target cur =
  let rel = sint_le cur 1 in
  Int64.add cur.pos rel

let size_kind_form cur =
  let form = next cur in
  let size = size_of_code cur (form land 3) in
  let kind = (form lsr 2) land 1 in
  (form, size, kind)

let decode_primary cur opcode : Insn.t =
  if opcode >= Op.alu_base && opcode < Op.alu_base + 8 then begin
    let op =
      match opcode - Op.alu_base with
      | 0 -> Insn.Add | 1 -> Insn.Or | 2 -> Insn.Adc | 3 -> Insn.Sbb
      | 4 -> Insn.And | 5 -> Insn.Sub | 6 -> Insn.Xor | 7 -> Insn.Cmp
      | _ -> assert false
    in
    let size, dst, src = rm_src cur in
    Insn.Alu (op, size, dst, src)
  end
  else if opcode >= Op.unary_base && opcode < Op.unary_base + 4 then begin
    let op =
      match opcode - Op.unary_base with
      | 0 -> Insn.Not | 1 -> Insn.Neg | 2 -> Insn.Inc | 3 -> Insn.Dec
      | _ -> assert false
    in
    let form, size, kind = size_kind_form cur in
    if form land lnot 0x07 <> 0 then bad cur;
    Insn.Unary (op, size, rm_of_kind cur kind)
  end
  else if opcode >= Op.shift_base && opcode < Op.shift_base + 5 then begin
    let op =
      match opcode - Op.shift_base with
      | 0 -> Insn.Shl | 1 -> Insn.Shr | 2 -> Insn.Sar | 3 -> Insn.Rol | 4 -> Insn.Ror
      | _ -> assert false
    in
    let form = next cur in
    let size = size_of_code cur (form land 3) in
    let kind = (form lsr 2) land 1 in
    let ckind = (form lsr 3) land 1 in
    if form land lnot 0x0F <> 0 then bad cur;
    let dst = rm_of_kind cur kind in
    let count = if ckind = 0 then Insn.ImmC (next cur) else Insn.Cl in
    Insn.Shift (op, size, dst, count)
  end
  else if opcode >= Op.muldiv_base && opcode < Op.muldiv_base + 4 then begin
    let op =
      match opcode - Op.muldiv_base with
      | 0 -> Insn.Mul | 1 -> Insn.Imul1 | 2 -> Insn.Div | 3 -> Insn.Idiv
      | _ -> assert false
    in
    let form, size, kind = size_kind_form cur in
    if form land lnot 0x07 <> 0 then bad cur;
    Insn.Muldiv (op, size, rm_of_kind cur kind)
  end
  else if opcode >= Op.bittest_base && opcode < Op.bittest_base + 4 then begin
    let op =
      match opcode - Op.bittest_base with
      | 0 -> Insn.Bt | 1 -> Insn.Bts | 2 -> Insn.Btr | 3 -> Insn.Btc
      | _ -> assert false
    in
    let form = next cur in
    let size = size_of_code cur (form land 3) in
    let kind = (form lsr 2) land 1 in
    let skind = (form lsr 3) land 1 in
    if form land lnot 0x0F <> 0 then bad cur;
    let dst = rm_of_kind cur kind in
    let src = if skind = 0 then Insn.Breg (reg cur) else Insn.Bimm (next cur) in
    Insn.Bittest (op, size, dst, src)
  end
  else if opcode = Op.nop then Insn.Nop
  else if opcode = Op.test then
    let size, dst, src = rm_src cur in
    Insn.Test (size, dst, src)
  else if opcode = Op.mov then
    let size, dst, src = rm_src cur in
    Insn.Mov (size, dst, src)
  else if opcode = Op.movabs then begin
    let r = reg cur in
    Insn.Movabs (r, int_le cur 8)
  end
  else if opcode = Op.lea then begin
    let r = reg cur in
    Insn.Lea (r, mem cur)
  end
  else if opcode = Op.movzx || opcode = Op.movsx then begin
    let form = next cur in
    let dsize = size_of_code cur (form land 3) in
    let ssize = size_of_code cur ((form lsr 2) land 3) in
    let kind = (form lsr 4) land 1 in
    if form land lnot 0x1F <> 0 then bad cur;
    if W64.bytes_of_size ssize >= W64.bytes_of_size dsize then bad cur;
    let r = reg cur in
    let src = rm_of_kind cur kind in
    if opcode = Op.movzx then Insn.Movzx (dsize, ssize, r, src)
    else Insn.Movsx (dsize, ssize, r, src)
  end
  else if opcode = Op.imul2 then begin
    let form, size, kind = size_kind_form cur in
    if form land lnot 0x07 <> 0 then bad cur;
    let r = reg cur in
    Insn.Imul2 (size, r, rm_of_kind cur kind)
  end
  else if opcode = Op.push then begin
    match next cur with
    | 0 -> Insn.Push (Insn.RM (Insn.Reg (reg cur)))
    | 1 -> Insn.Push (Insn.Imm (sint_le cur 4))
    | 2 -> Insn.Push (Insn.RM (Insn.Mem (mem cur)))
    | _ -> bad cur
  end
  else if opcode = Op.pop then begin
    let kind = next cur in
    if kind > 1 then bad cur;
    Insn.Pop (rm_of_kind cur kind)
  end
  else if opcode = Op.call then Insn.Call (rel32_target cur)
  else if opcode = Op.call_ind then begin
    let kind = next cur in
    if kind > 1 then bad cur;
    Insn.CallInd (rm_of_kind cur kind)
  end
  else if opcode = Op.ret then Insn.Ret
  else if opcode = Op.jmp then Insn.Jmp (rel32_target cur)
  else if opcode = Op.jmp_ind then begin
    let kind = next cur in
    if kind > 1 then bad cur;
    Insn.JmpInd (rm_of_kind cur kind)
  end
  else if opcode = Op.jcc then begin
    let cb = next cur in
    let cond = Flags.cond_of_code (cb land 0x0F) in
    if cb land lnot 0x8F <> 0 then bad cur;
    if cb land 0x80 <> 0 then Insn.Jcc (cond, rel8_target cur)
    else Insn.Jcc (cond, rel32_target cur)
  end
  else if opcode = Op.setcc then begin
    let cond = Flags.cond_of_code (next cur land 0x0F) in
    let kind = next cur in
    if kind > 1 then bad cur;
    Insn.Setcc (cond, rm_of_kind cur kind)
  end
  else if opcode = Op.cmovcc then begin
    let cond = Flags.cond_of_code (next cur land 0x0F) in
    let form, size, kind = size_kind_form cur in
    if form land lnot 0x07 <> 0 then bad cur;
    let r = reg cur in
    Insn.Cmovcc (cond, size, r, rm_of_kind cur kind)
  end
  else if opcode = Op.xchg || opcode = Op.xadd || opcode = Op.cmpxchg then begin
    let form, size, kind = size_kind_form cur in
    if form land lnot 0x07 <> 0 then bad cur;
    let dst = rm_of_kind cur kind in
    let r = reg cur in
    match opcode with
    | o when o = Op.xchg -> Insn.Xchg (size, dst, r)
    | o when o = Op.xadd -> Insn.Xadd (size, dst, r)
    | _ -> Insn.Cmpxchg (size, dst, r)
  end
  else if opcode = Op.movs || opcode = Op.stos || opcode = Op.lods then begin
    let size = size_of_code cur (next cur) in
    match opcode with
    | o when o = Op.movs -> Insn.Movs (size, false)
    | o when o = Op.stos -> Insn.Stos (size, false)
    | _ -> Insn.Lods (size, false)
  end
  else if opcode = Op.hlt then Insn.Hlt
  else if opcode = Op.syscall then Insn.Syscall
  else if opcode = Op.sysret then Insn.Sysret
  else if opcode = Op.int_ then Insn.Int (next cur)
  else if opcode = Op.iret then Insn.Iret
  else if opcode = Op.pushf then Insn.Pushf
  else if opcode = Op.popf then Insn.Popf
  else if opcode = Op.cli then Insn.Cli
  else if opcode = Op.sti then Insn.Sti
  else if opcode = Op.pause then Insn.Pause
  else bad cur

let decode_secondary cur opcode : Insn.t =
  if opcode >= Op.x_fp_base && opcode < Op.x_fp_base + 4 then begin
    let op =
      match opcode - Op.x_fp_base with
      | 0 -> Insn.Fadd | 1 -> Insn.Fsub | 2 -> Insn.Fmul | 3 -> Insn.Fdiv
      | _ -> assert false
    in
    Insn.Fp (op, mem cur)
  end
  else if opcode >= Op.x_sse_base && opcode < Op.x_sse_base + 4 then begin
    let op =
      match opcode - Op.x_sse_base with
      | 0 -> Insn.Addsd | 1 -> Insn.Subsd | 2 -> Insn.Mulsd | 3 -> Insn.Divsd
      | _ -> assert false
    in
    let xd = xmm cur in
    Insn.Sse (op, xd, xmm cur)
  end
  else if opcode = Op.x_ptlcall then Insn.Ptlcall
  else if opcode = Op.x_kcall then Insn.Kcall
  else if opcode = Op.x_rdtsc then Insn.Rdtsc
  else if opcode = Op.x_rdpmc then Insn.Rdpmc
  else if opcode = Op.x_cpuid then Insn.Cpuid
  else if opcode = Op.x_mov_to_cr then begin
    let cr = next cur in
    Insn.MovToCr (cr, reg cur)
  end
  else if opcode = Op.x_mov_from_cr then begin
    let cr = next cur in
    Insn.MovFromCr (cr, reg cur)
  end
  else if opcode = Op.x_invlpg then Insn.Invlpg (mem cur)
  else if opcode = Op.x_fld then Insn.Fld (mem cur)
  else if opcode = Op.x_fst then Insn.Fst (mem cur)
  else if opcode = Op.x_sse_load then begin
    let x = xmm cur in
    Insn.SseLoad (x, mem cur)
  end
  else if opcode = Op.x_sse_store then begin
    let x = xmm cur in
    Insn.SseStore (mem cur, x)
  end
  else if opcode = Op.x_sse_mov then begin
    let xd = xmm cur in
    Insn.SseMov (xd, xmm cur)
  end
  else if opcode = Op.x_cvtsi2sd then begin
    let x = xmm cur in
    Insn.Cvtsi2sd (x, reg cur)
  end
  else if opcode = Op.x_cvtsd2si then begin
    let r = reg cur in
    Insn.Cvtsd2si (r, xmm cur)
  end
  else if opcode = Op.x_comisd then begin
    let xa = xmm cur in
    Insn.Comisd (xa, xmm cur)
  end
  else bad cur

(** Decode one instruction at virtual address [rip], fetching bytes through
    [fetch]. Returns the instruction and its encoded length. Raises
    [Invalid_opcode] on undefined encodings; any exception raised by
    [fetch] (such as a page-fault marker) propagates. *)
let decode ~fetch ~rip : Insn.t * int =
  let cur = cursor fetch rip in
  let rec go ~locked ~rep =
    let opcode = next cur in
    if opcode = Op.pfx_lock then begin
      if locked then bad cur;
      go ~locked:true ~rep
    end
    else if opcode = Op.pfx_rep then begin
      if rep then bad cur;
      go ~locked ~rep:true
    end
    else begin
      let insn =
        if opcode = Op.escape then decode_secondary cur (next cur)
        else decode_primary cur opcode
      in
      let insn =
        if rep then
          match insn with
          | Insn.Movs (size, false) -> Insn.Movs (size, true)
          | Insn.Stos (size, false) -> Insn.Stos (size, true)
          | Insn.Lods (size, false) -> Insn.Lods (size, true)
          | _ -> bad cur
        else insn
      in
      if locked then begin
        if not (Insn.lockable insn) then bad cur;
        Insn.Locked insn
      end
      else insn
    end
  in
  let insn = go ~locked:false ~rep:false in
  (insn, consumed cur)

(** Decode from a flat string placed at base address 0 (test helper). *)
let decode_string bytes ~at =
  let fetch addr =
    let i = Int64.to_int addr in
    if i < 0 || i >= String.length bytes then raise (Invalid_opcode addr)
    else Char.code bytes.[i]
  in
  decode ~fetch ~rip:(Int64.of_int at)
