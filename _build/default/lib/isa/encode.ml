(** Binary encoder: instruction AST to variable-length byte sequences.

    Layout of one instruction:
    {v
      [0xF0 LOCK] [0xF3 REP] opcode [0x0F page2-opcode] fields...
    v}
    Fields follow the opcode in a fixed order per opcode; memory operands
    are [base index sib disp8/disp32] where the sib byte holds log2(scale)
    in its low bits and bit 7 selects an 8-bit displacement. Relative
    branches are encoded against the address of the *next* instruction, and
    [Jcc] has a short (rel8) form chosen when the displacement fits —
    exactly the relaxation problem a real variable-length ISA poses.

    Invariant checked by the property tests: [decode (encode i)] round
    trips for every valid instruction. *)

open Ptl_util
module Op = Opcodes

let size_code = function W64.B1 -> 0 | W64.B2 -> 1 | W64.B4 -> 2 | W64.B8 -> 3
let alu_code = function
  | Insn.Add -> 0 | Insn.Or -> 1 | Insn.Adc -> 2 | Insn.Sbb -> 3
  | Insn.And -> 4 | Insn.Sub -> 5 | Insn.Xor -> 6 | Insn.Cmp -> 7
let unary_code = function Insn.Not -> 0 | Insn.Neg -> 1 | Insn.Inc -> 2 | Insn.Dec -> 3
let shift_code = function
  | Insn.Shl -> 0 | Insn.Shr -> 1 | Insn.Sar -> 2 | Insn.Rol -> 3 | Insn.Ror -> 4
let muldiv_code = function
  | Insn.Mul -> 0 | Insn.Imul1 -> 1 | Insn.Div -> 2 | Insn.Idiv -> 3
let bittest_code = function
  | Insn.Bt -> 0 | Insn.Bts -> 1 | Insn.Btr -> 2 | Insn.Btc -> 3
let fp_code = function Insn.Fadd -> 0 | Insn.Fsub -> 1 | Insn.Fmul -> 2 | Insn.Fdiv -> 3
let sse_code = function
  | Insn.Addsd -> 0 | Insn.Subsd -> 1 | Insn.Mulsd -> 2 | Insn.Divsd -> 3

let fits_int8 v = Int64.compare v (-128L) >= 0 && Int64.compare v 127L <= 0
let fits_int32 v =
  Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0

let byte buf b = Buffer.add_char buf (Char.chr (b land 0xFF))

let int_le buf v n =
  for i = 0 to n - 1 do
    byte buf (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done

(* Memory operand: base, index, sib (scale + disp8 flag), disp. *)
let emit_mem buf (m : Insn.mem) =
  byte buf (match m.base with Some r -> r | None -> Op.no_reg);
  byte buf (match m.index with Some r -> r | None -> Op.no_reg);
  let small = fits_int8 m.disp in
  let sib = Bitops.log2 m.scale lor (if small then 0x80 else 0) in
  byte buf sib;
  int_le buf m.disp (if small then 1 else 4)

(* Immediate width in bytes for the "imm32" form at a given operand size.
   Byte and word operations take immediates of their own width. *)
let imm_bytes size = min 4 (W64.bytes_of_size size)

(* Canonical form of an immediate at [size]: truncated to the operand width
   and sign-extended back to 64 bits, so that e.g. [mov al, 0xFF] and
   [mov al, -1] encode (and round-trip) identically. *)
let normalize_imm size v = W64.sign_extend size (W64.truncate size v)

(* Whether the canonicalised [v] is encodable as a sign-extended immediate
   at [size]; only 64-bit operations can fail (use [Movabs] instead). *)
let imm_encodable size v =
  match size with W64.B8 -> fits_int32 v | W64.B1 | W64.B2 | W64.B4 -> true

(* Two-operand form byte: size | dst kind | src kind. *)
let emit_rm_src buf size (dst : Insn.rm) (src : Insn.src) =
  let src =
    match src with
    | Insn.Imm v -> Insn.Imm (normalize_imm size v)
    | Insn.RM _ -> src
  in
  let dst_kind = match dst with Insn.Reg _ -> 0 | Insn.Mem _ -> 1 in
  let src_kind, imm8 =
    match src with
    | Insn.RM (Insn.Reg _) -> (0, false)
    | Insn.RM (Insn.Mem _) -> (1, false)
    | Insn.Imm v -> if fits_int8 v then (3, true) else (2, false)
  in
  (match (dst, src) with
  | Insn.Mem _, Insn.RM (Insn.Mem _) ->
    invalid_arg "Encode: memory-to-memory operand combination"
  | _ -> ());
  byte buf (size_code size lor (dst_kind lsl 2) lor (src_kind lsl 4));
  (match dst with Insn.Reg r -> byte buf r | Insn.Mem m -> emit_mem buf m);
  match src with
  | Insn.RM (Insn.Reg r) -> byte buf r
  | Insn.RM (Insn.Mem m) -> emit_mem buf m
  | Insn.Imm v ->
    if imm8 then int_le buf v 1
    else begin
      if not (imm_encodable size v) then
        invalid_arg (Printf.sprintf "Encode: immediate %Ld out of range" v);
      int_le buf v (imm_bytes size)
    end

let emit_rm buf (rm : Insn.rm) =
  match rm with Insn.Reg r -> byte buf r | Insn.Mem m -> emit_mem buf m

let rm_kind = function Insn.Reg _ -> 0 | Insn.Mem _ -> 1

(* Relative branch displacement: patched after the instruction length is
   known, since the displacement is relative to the next instruction. *)
let emit_rel32 buf ~rip ~target ~len_before_rel =
  let next = Int64.add rip (Int64.of_int (len_before_rel + 4)) in
  let rel = Int64.sub target next in
  if not (fits_int32 rel) then invalid_arg "Encode: branch displacement too far";
  int_le buf rel 4

(** Encode [insn] as placed at virtual address [rip] (needed for relative
    branches; defaults to 0). [short_branches] (default true) lets the
    encoder pick the rel8 form of [Jcc] when the displacement fits; the
    assembler disables it per-instruction to break relaxation oscillation.
    Returns the raw bytes. *)
let rec encode ?(rip = 0L) ?(short_branches = true) (insn : Insn.t) : string =
  let buf = Buffer.create 8 in
  (match insn with
  | Insn.Locked body ->
    if not (Insn.lockable body) then invalid_arg "Encode: LOCK on non-lockable";
    byte buf Op.pfx_lock;
    Buffer.add_string buf (encode ~rip:(Int64.add rip 1L) ~short_branches body)
  | Insn.Nop -> byte buf Op.nop
  | Insn.Alu (op, size, dst, src) ->
    byte buf (Op.alu_base + alu_code op);
    emit_rm_src buf size dst src
  | Insn.Test (size, dst, src) ->
    byte buf Op.test;
    emit_rm_src buf size dst src
  | Insn.Mov (size, dst, src) ->
    byte buf Op.mov;
    emit_rm_src buf size dst src
  | Insn.Movabs (r, v) ->
    byte buf Op.movabs;
    byte buf r;
    int_le buf v 8
  | Insn.Lea (r, m) ->
    byte buf Op.lea;
    byte buf r;
    emit_mem buf m
  | Insn.Movzx (dsize, ssize, r, src) | Insn.Movsx (dsize, ssize, r, src) ->
    byte buf (match insn with Insn.Movzx _ -> Op.movzx | _ -> Op.movsx);
    byte buf (size_code dsize lor (size_code ssize lsl 2) lor (rm_kind src lsl 4));
    byte buf r;
    emit_rm buf src
  | Insn.Unary (op, size, dst) ->
    byte buf (Op.unary_base + unary_code op);
    byte buf (size_code size lor (rm_kind dst lsl 2));
    emit_rm buf dst
  | Insn.Shift (op, size, dst, count) ->
    byte buf (Op.shift_base + shift_code op);
    let ckind = match count with Insn.ImmC _ -> 0 | Insn.Cl -> 1 in
    byte buf (size_code size lor (rm_kind dst lsl 2) lor (ckind lsl 3));
    emit_rm buf dst;
    (match count with
    | Insn.ImmC n ->
      if n < 0 || n > 255 then invalid_arg "Encode: shift count";
      byte buf n
    | Insn.Cl -> ())
  | Insn.Imul2 (size, r, src) ->
    byte buf Op.imul2;
    byte buf (size_code size lor (rm_kind src lsl 2));
    byte buf r;
    emit_rm buf src
  | Insn.Muldiv (op, size, operand) ->
    byte buf (Op.muldiv_base + muldiv_code op);
    byte buf (size_code size lor (rm_kind operand lsl 2));
    emit_rm buf operand
  | Insn.Push src ->
    byte buf Op.push;
    (match src with
    | Insn.RM (Insn.Reg r) ->
      byte buf 0;
      byte buf r
    | Insn.Imm v ->
      if not (fits_int32 v) then invalid_arg "Encode: push imm out of range";
      byte buf 1;
      int_le buf v 4
    | Insn.RM (Insn.Mem m) ->
      byte buf 2;
      emit_mem buf m)
  | Insn.Pop dst ->
    byte buf Op.pop;
    byte buf (rm_kind dst);
    emit_rm buf dst
  | Insn.Call target ->
    byte buf Op.call;
    emit_rel32 buf ~rip ~target ~len_before_rel:1
  | Insn.CallInd rm ->
    byte buf Op.call_ind;
    byte buf (rm_kind rm);
    emit_rm buf rm
  | Insn.Ret -> byte buf Op.ret
  | Insn.Jmp target ->
    byte buf Op.jmp;
    emit_rel32 buf ~rip ~target ~len_before_rel:1
  | Insn.JmpInd rm ->
    byte buf Op.jmp_ind;
    byte buf (rm_kind rm);
    emit_rm buf rm
  | Insn.Jcc (cond, target) ->
    byte buf Op.jcc;
    (* Short form: opcode + condbyte(bit7) + rel8 = 3 bytes. *)
    let rel_short = Int64.sub target (Int64.add rip 3L) in
    if short_branches && fits_int8 rel_short then begin
      byte buf (Flags.cond_code cond lor 0x80);
      int_le buf rel_short 1
    end
    else begin
      byte buf (Flags.cond_code cond);
      emit_rel32 buf ~rip ~target ~len_before_rel:2
    end
  | Insn.Setcc (cond, dst) ->
    byte buf Op.setcc;
    byte buf (Flags.cond_code cond);
    byte buf (rm_kind dst);
    emit_rm buf dst
  | Insn.Cmovcc (cond, size, r, src) ->
    byte buf Op.cmovcc;
    byte buf (Flags.cond_code cond);
    byte buf (size_code size lor (rm_kind src lsl 2));
    byte buf r;
    emit_rm buf src
  | Insn.Xchg (size, dst, r) | Insn.Xadd (size, dst, r) | Insn.Cmpxchg (size, dst, r) ->
    byte buf
      (match insn with
      | Insn.Xchg _ -> Op.xchg
      | Insn.Xadd _ -> Op.xadd
      | _ -> Op.cmpxchg);
    byte buf (size_code size lor (rm_kind dst lsl 2));
    emit_rm buf dst;
    byte buf r
  | Insn.Bittest (op, size, dst, src) ->
    byte buf (Op.bittest_base + bittest_code op);
    let skind = match src with Insn.Breg _ -> 0 | Insn.Bimm _ -> 1 in
    byte buf (size_code size lor (rm_kind dst lsl 2) lor (skind lsl 3));
    emit_rm buf dst;
    (match src with
    | Insn.Breg r -> byte buf r
    | Insn.Bimm n ->
      if n < 0 || n > 255 then invalid_arg "Encode: bit index";
      byte buf n)
  | Insn.Movs (size, rep) | Insn.Stos (size, rep) | Insn.Lods (size, rep) ->
    if rep then byte buf Op.pfx_rep;
    byte buf
      (match insn with
      | Insn.Movs _ -> Op.movs
      | Insn.Stos _ -> Op.stos
      | _ -> Op.lods);
    byte buf (size_code size)
  | Insn.Hlt -> byte buf Op.hlt
  | Insn.Syscall -> byte buf Op.syscall
  | Insn.Sysret -> byte buf Op.sysret
  | Insn.Int n ->
    byte buf Op.int_;
    byte buf n
  | Insn.Iret -> byte buf Op.iret
  | Insn.Pushf -> byte buf Op.pushf
  | Insn.Popf -> byte buf Op.popf
  | Insn.Cli -> byte buf Op.cli
  | Insn.Sti -> byte buf Op.sti
  | Insn.Pause -> byte buf Op.pause
  | Insn.Ptlcall ->
    byte buf Op.escape;
    byte buf Op.x_ptlcall
  | Insn.Kcall ->
    byte buf Op.escape;
    byte buf Op.x_kcall
  | Insn.Rdtsc ->
    byte buf Op.escape;
    byte buf Op.x_rdtsc
  | Insn.Rdpmc ->
    byte buf Op.escape;
    byte buf Op.x_rdpmc
  | Insn.Cpuid ->
    byte buf Op.escape;
    byte buf Op.x_cpuid
  | Insn.MovToCr (cr, r) ->
    byte buf Op.escape;
    byte buf Op.x_mov_to_cr;
    byte buf cr;
    byte buf r
  | Insn.MovFromCr (cr, r) ->
    byte buf Op.escape;
    byte buf Op.x_mov_from_cr;
    byte buf cr;
    byte buf r
  | Insn.Invlpg m ->
    byte buf Op.escape;
    byte buf Op.x_invlpg;
    emit_mem buf m
  | Insn.Fld m ->
    byte buf Op.escape;
    byte buf Op.x_fld;
    emit_mem buf m
  | Insn.Fst m ->
    byte buf Op.escape;
    byte buf Op.x_fst;
    emit_mem buf m
  | Insn.Fp (op, m) ->
    byte buf Op.escape;
    byte buf (Op.x_fp_base + fp_code op);
    emit_mem buf m
  | Insn.SseLoad (x, m) ->
    byte buf Op.escape;
    byte buf Op.x_sse_load;
    byte buf x;
    emit_mem buf m
  | Insn.SseStore (m, x) ->
    byte buf Op.escape;
    byte buf Op.x_sse_store;
    byte buf x;
    emit_mem buf m
  | Insn.SseMov (xd, xs) ->
    byte buf Op.escape;
    byte buf Op.x_sse_mov;
    byte buf xd;
    byte buf xs
  | Insn.Sse (op, xd, xs) ->
    byte buf Op.escape;
    byte buf (Op.x_sse_base + sse_code op);
    byte buf xd;
    byte buf xs
  | Insn.Cvtsi2sd (x, r) ->
    byte buf Op.escape;
    byte buf Op.x_cvtsi2sd;
    byte buf x;
    byte buf r
  | Insn.Cvtsd2si (r, x) ->
    byte buf Op.escape;
    byte buf Op.x_cvtsd2si;
    byte buf r;
    byte buf x
  | Insn.Comisd (xa, xb) ->
    byte buf Op.escape;
    byte buf Op.x_comisd;
    byte buf xa;
    byte buf xb);
  Buffer.contents buf

(** Encoded length of [insn] at [rip]. *)
let length ?(rip = 0L) insn = String.length (encode ~rip insn)

(** Canonical form of an instruction: immediates reduced to the
    representation the encoder actually emits. [decode (encode i)] equals
    [normalize i] for every encodable instruction — the round-trip property
    checked by the test suite. *)
let rec normalize (insn : Insn.t) : Insn.t =
  match insn with
  | Insn.Alu (op, size, dst, Insn.Imm v) ->
    Insn.Alu (op, size, dst, Insn.Imm (normalize_imm size v))
  | Insn.Test (size, dst, Insn.Imm v) ->
    Insn.Test (size, dst, Insn.Imm (normalize_imm size v))
  | Insn.Mov (size, dst, Insn.Imm v) ->
    Insn.Mov (size, dst, Insn.Imm (normalize_imm size v))
  | Insn.Push (Insn.Imm v) -> Insn.Push (Insn.Imm (W64.sign_extend W64.B4 v))
  | Insn.Locked body -> Insn.Locked (normalize body)
  | other -> other
