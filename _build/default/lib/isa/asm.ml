(** Two-pass assembler for x86lite-64 with labels, data directives and
    branch relaxation.

    Guest programs (the minios kernel and all benchmark workloads) are built
    with this assembler. Because the ISA is variable-length and [Jcc] has a
    short form, label resolution iterates to a fixed point; any instruction
    whose encoding would grow between iterations is pinned to the long form
    (standard branch-relaxation convergence argument). *)

open Ptl_util

type item =
  | Ins of Insn.t
  (* An instruction whose encoding depends on a label address. The closure
     receives the resolved label address and produces the instruction. *)
  | Ins_ref of string * (int64 -> Insn.t)
  | Label of string
  | Align of int
  | Bytes of string
  | Space of int
  | Quad_ref of string  (* 64-bit data word holding a label address *)

type t = {
  base : int64;
  mutable items : item list;  (* reversed *)
  mutable defined : (string * int64) list;  (* absolute symbols *)
}

let create ~base () = { base; items = []; defined = [] }

let emit t item = t.items <- item :: t.items

(** Append a fixed instruction. *)
let ins t i = emit t (Ins i)

(** Append a list of fixed instructions. *)
let inss t is = List.iter (ins t) is

(** Place a label at the current position. *)
let label t name = emit t (Label name)

(** Define an absolute symbol (an address outside this program). *)
let define t name addr = t.defined <- (name, addr) :: t.defined

(** Align the current position to [n] bytes (power of two). Padding bytes
    are 0x00, which is the [nop] opcode, so gaps are executable. *)
let align t n =
  if not (Bitops.is_pow2 n) then invalid_arg "Asm.align";
  emit t (Align n)

(** Raw data bytes. *)
let bytes t s = emit t (Bytes s)

let byte t b = bytes t (String.make 1 (Char.chr (b land 0xFF)))

let quad t v =
  let b = Buffer.create 8 in
  for i = 0 to 7 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done;
  bytes t (Buffer.contents b)

let dword t v =
  let b = Buffer.create 4 in
  let v = Int64.of_int v in
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done;
  bytes t (Buffer.contents b)

(** Reserve [n] zero bytes. *)
let space t n = emit t (Space n)

let asciz t s = bytes t (s ^ "\x00")

(* Label-referencing conveniences. *)
let jmp t name = emit t (Ins_ref (name, fun addr -> Insn.Jmp addr))
let jcc t cond name = emit t (Ins_ref (name, fun addr -> Insn.Jcc (cond, addr)))
let call t name = emit t (Ins_ref (name, fun addr -> Insn.Call addr))

(** Load the address of [name] into a register. *)
let lea_label t r name =
  emit t (Ins_ref (name, fun addr -> Insn.Movabs (r, addr)))

(** A 64-bit data word holding the address of [name] (for jump tables and
    descriptor tables). *)
let quad_label t name = emit t (Quad_ref name)

(** The assembled image. *)
type image = {
  img_base : int64;
  code : string;
  symbols : (string, int64) Hashtbl.t;
}

let symbol img name =
  match Hashtbl.find_opt img.symbols name with
  | Some a -> a
  | None -> invalid_arg ("Asm.symbol: undefined " ^ name)

exception Undefined_label of string

(** Assemble to a flat image at [t.base]. Raises [Undefined_label] for
    unresolved references. *)
let assemble t : image =
  let items = Array.of_list (List.rev t.items) in
  let n = Array.length items in
  (* Per-item pinned-long flag for branch relaxation. *)
  let pinned = Array.make n false in
  let lengths = Array.make n 0 in
  let symbols : (string, int64) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (name, addr) -> Hashtbl.replace symbols name addr) t.defined;
  let lookup name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> raise (Undefined_label name)
  in
  (* One sizing pass: compute item lengths and label addresses with the
     current relaxation choices. Unknown forward labels are assumed far
     away (long form). Returns true if any length changed. *)
  let sizing_pass () =
    let changed = ref false in
    let pos = ref t.base in
    Array.iteri
      (fun i item ->
        (match item with Label name -> Hashtbl.replace symbols name !pos | _ -> ());
        let len =
          match item with
          | Label _ -> 0
          | Align a ->
            let p = Int64.to_int (Int64.sub !pos t.base) in
            Bitops.align_up p a - p
          | Bytes s -> String.length s
          | Space k -> k
          | Quad_ref _ -> 8
          | Ins insn -> String.length (Encode.encode ~rip:!pos insn)
          | Ins_ref (name, make) ->
            let target =
              match Hashtbl.find_opt symbols name with
              | Some a -> a
              | None -> Int64.add !pos 0x1000000L (* unknown: assume far *)
            in
            String.length
              (Encode.encode ~rip:!pos ~short_branches:(not pinned.(i)) (make target))
        in
        if lengths.(i) <> 0 && len > lengths.(i) then begin
          (* Growing encodings oscillate; pin to the long form. *)
          pinned.(i) <- true
        end;
        if lengths.(i) <> len then changed := true;
        lengths.(i) <- len;
        pos := Int64.add !pos (Int64.of_int len))
      items;
    !changed
  in
  let rec iterate k =
    let changed = sizing_pass () in
    if changed && k < 64 then iterate (k + 1)
  in
  iterate 0;
  (* Re-run once more after any pinning so lengths and symbols agree. *)
  ignore (sizing_pass ());
  (* Emission pass. *)
  let buf = Buffer.create 4096 in
  let pos = ref t.base in
  Array.iteri
    (fun i item ->
      let emitted =
        match item with
        | Label _ -> ""
        | Align _ -> String.make lengths.(i) '\x00'
        | Bytes s -> s
        | Space k -> String.make k '\x00'
        | Quad_ref name ->
          let v = lookup name in
          String.init 8 (fun i ->
              Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
        | Ins insn -> Encode.encode ~rip:!pos insn
        | Ins_ref (name, make) ->
          Encode.encode ~rip:!pos ~short_branches:(not pinned.(i)) (make (lookup name))
      in
      if String.length emitted <> lengths.(i) then
        failwith
          (Printf.sprintf "Asm.assemble: length instability at item %d (%d vs %d)" i
             (String.length emitted) lengths.(i));
      Buffer.add_string buf emitted;
      pos := Int64.add !pos (Int64.of_int lengths.(i)))
    items;
  { img_base = t.base; code = Buffer.contents buf; symbols }
