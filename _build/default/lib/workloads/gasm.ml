(** A thin DSL over the assembler for writing guest programs.

    All the benchmark workloads (the rsync/ssh pipeline, the
    microbenchmarks, the SMT lock-contention kernels) are real guest
    programs written through these helpers. Conventions: arguments in
    rdi/rsi/rdx, results in rax, rbx/rbp/r12..r15 callee-saved, syscalls
    as per {!Ptl_kernel.Abi}. *)

open Ptl_util
module Insn = Ptl_isa.Insn
module Regs = Ptl_isa.Regs
module Asm = Ptl_isa.Asm
module Flags = Ptl_isa.Flags
module Abi = Ptl_kernel.Abi

type t = { a : Asm.t; mutable uid : int }

let create ?(base = Abi.user_code_base) () = { a = Asm.create ~base (); uid = 0 }

let assemble t = Asm.assemble t.a

(** Fresh local label. *)
let fresh t prefix =
  t.uid <- t.uid + 1;
  Printf.sprintf ".%s_%d" prefix t.uid

let label t name = Asm.label t.a name
let ins t i = Asm.ins t.a i

(* register shorthands *)
let rax = Regs.rax
let rbx = Regs.rbx
let rcx = Regs.rcx
let rdx = Regs.rdx
let rsi = Regs.rsi
let rdi = Regs.rdi
let rbp = Regs.rbp
let rsp = Regs.rsp
let r8 = Regs.r8
let r9 = Regs.r9
let r10 = Regs.r10
let r11 = Regs.r11
let r12 = Regs.r12
let r13 = Regs.r13
let r14 = Regs.r14
let r15 = Regs.r15

(** Load immediate (full 64-bit when needed). *)
let li t r v =
  if Int64.compare v (-2147483648L) >= 0 && Int64.compare v 2147483647L <= 0 then
    ins t (Insn.Mov (W64.B8, Insn.Reg r, Insn.Imm v))
  else ins t (Insn.Movabs (r, v))

let lii t r v = li t r (Int64.of_int v)

(** Load the address of a label. *)
let la t r name = Asm.lea_label t.a r name

let mov t rd rs = ins t (Insn.Mov (W64.B8, Insn.Reg rd, Insn.RM (Insn.Reg rs)))
let add t rd rs = ins t (Insn.Alu (Insn.Add, W64.B8, Insn.Reg rd, Insn.RM (Insn.Reg rs)))
let addi t rd v = ins t (Insn.Alu (Insn.Add, W64.B8, Insn.Reg rd, Insn.Imm (Int64.of_int v)))
let sub t rd rs = ins t (Insn.Alu (Insn.Sub, W64.B8, Insn.Reg rd, Insn.RM (Insn.Reg rs)))
let subi t rd v = ins t (Insn.Alu (Insn.Sub, W64.B8, Insn.Reg rd, Insn.Imm (Int64.of_int v)))
let andi t rd v = ins t (Insn.Alu (Insn.And, W64.B8, Insn.Reg rd, Insn.Imm (Int64.of_int v)))
let xor t rd rs = ins t (Insn.Alu (Insn.Xor, W64.B8, Insn.Reg rd, Insn.RM (Insn.Reg rs)))
let cmp t ra rb = ins t (Insn.Alu (Insn.Cmp, W64.B8, Insn.Reg ra, Insn.RM (Insn.Reg rb)))
let cmpi t ra v = ins t (Insn.Alu (Insn.Cmp, W64.B8, Insn.Reg ra, Insn.Imm (Int64.of_int v)))
let shl t rd n = ins t (Insn.Shift (Insn.Shl, W64.B8, Insn.Reg rd, Insn.ImmC n))
let shr t rd n = ins t (Insn.Shift (Insn.Shr, W64.B8, Insn.Reg rd, Insn.ImmC n))
let imul t rd rs = ins t (Insn.Imul2 (W64.B8, rd, Insn.Reg rs))

(** 64-bit load/store via [base + disp]. *)
let ld t rd ~base ?(disp = 0) () =
  ins t (Insn.Mov (W64.B8, Insn.Reg rd, Insn.RM (Insn.Mem (Insn.mem_bd base (Int64.of_int disp)))))

let st t ~base ?(disp = 0) rs () =
  ins t (Insn.Mov (W64.B8, Insn.Mem (Insn.mem_bd base (Int64.of_int disp)), Insn.RM (Insn.Reg rs)))

(** Byte load (zero-extended) / store. *)
let ldb t rd ~base ?(disp = 0) ?index ?(scale = 1) () =
  ins t
    (Insn.Movzx
       (W64.B8, W64.B1, rd, Insn.Mem (Insn.mem ?index ~scale ~base ~disp:(Int64.of_int disp) ())))

let stb t ~base ?(disp = 0) ?index ?(scale = 1) rs () =
  ins t
    (Insn.Mov
       (W64.B1, Insn.Mem (Insn.mem ?index ~scale ~base ~disp:(Int64.of_int disp) ()),
        Insn.RM (Insn.Reg rs)))

let push t r = ins t (Insn.Push (Insn.RM (Insn.Reg r)))
let pop t r = ins t (Insn.Pop (Insn.Reg r))
let call t name = Asm.call t.a name
let ret t = ins t Insn.Ret
let jmp t name = Asm.jmp t.a name
let jcc t c name = Asm.jcc t.a c name
let je t name = jcc t Flags.E name
let jne t name = jcc t Flags.NE name

(** Inline syscall: number in rax, args already in rdi/rsi/rdx. *)
let syscall t nr =
  lii t rax nr;
  ins t Insn.Syscall

(* common syscall wrappers (clobber arg registers per the kernel ABI) *)
let sys_exit t code =
  lii t rdi code;
  syscall t Abi.sys_exit

let sys_marker t n =
  lii t rdi n;
  syscall t Abi.sys_ptl_marker

(** Emit a NUL-terminated string constant; returns its label. *)
let cstring t s =
  let l = fresh t "str" in
  let skip = fresh t "skip" in
  jmp t skip;
  label t l;
  Asm.asciz t.a s;
  label t skip;
  l

(** Data buffer of [n] zero bytes; returns its label. *)
let buffer t n =
  let l = fresh t "buf" in
  let skip = fresh t "skip" in
  jmp t skip;
  Asm.align t.a 8;
  label t l;
  Asm.space t.a n;
  label t skip;
  l

(** A counted loop: rcx from [n] down to 1. The body must preserve rcx. *)
let loop_n t n body =
  let top = fresh t "loop" in
  lii t rcx n;
  label t top;
  body ();
  ins t (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg rcx));
  jne t top

(* ---- reusable guest library routines ----

   Each [emit_*_fn] plants a callable function under a fixed label; the
   program calls it with the standard convention. Programs emit only the
   routines they use. *)

(** memcpy(rdi=dst, rsi=src, rdx=len); clobbers rcx. *)
let emit_memcpy_fn t =
  label t "memcpy";
  mov t rcx rdx;
  ins t (Insn.Movs (W64.B1, true));
  ret t

(** memset(rdi=dst, rsi=byte, rdx=len); clobbers rax, rcx. *)
let emit_memset_fn t =
  label t "memset";
  mov t rcx rdx;
  mov t rax rsi;
  ins t (Insn.Stos (W64.B1, true));
  ret t

(** write_full(rdi=fd, rsi=buf, rdx=len): loops until all written.
    Returns total in rax. Clobbers r8/r9/r10. *)
let emit_write_full_fn t =
  label t "write_full";
  mov t r8 rdi;
  mov t r9 rsi;
  mov t r10 rdx;
  let top = fresh t "wf" in
  let out = fresh t "wf_done" in
  label t top;
  cmpi t r10 0;
  jcc t Flags.LE out;
  mov t rdi r8;
  mov t rsi r9;
  mov t rdx r10;
  syscall t Abi.sys_write;
  cmpi t rax 0;
  jcc t Flags.LE out;
  add t r9 rax;
  sub t r10 rax;
  jmp t top;
  label t out;
  ret t

(** read_full(rdi=fd, rsi=buf, rdx=len): loops until len read or EOF.
    Returns bytes read in rax. Clobbers r8/r9/r10/r11... uses r12 (saved). *)
let emit_read_full_fn t =
  label t "read_full";
  push t r12;
  mov t r8 rdi;
  mov t r9 rsi;
  mov t r10 rdx;
  lii t r12 0;
  let top = fresh t "rf" in
  let out = fresh t "rf_done" in
  label t top;
  cmpi t r10 0;
  jcc t Flags.LE out;
  mov t rdi r8;
  mov t rsi r9;
  mov t rdx r10;
  syscall t Abi.sys_read;
  cmpi t rax 0;
  jcc t Flags.LE out;
  add t r9 rax;
  sub t r10 rax;
  add t r12 rax;
  jmp t top;
  label t out;
  mov t rax r12;
  pop t r12;
  ret t

(** checksum(rdi=buf, rsi=len) -> rax: the rsync rolling-checksum shape
    (two accumulators over every byte). Clobbers rcx, rdx, r8, r9. *)
let emit_checksum_fn t =
  label t "checksum";
  xor t rax rax (* a *);
  xor t rdx rdx (* b *);
  mov t rcx rsi;
  let top = fresh t "ck" in
  let out = fresh t "ck_done" in
  label t top;
  cmpi t rcx 0;
  je t out;
  ldb t r8 ~base:rdi ();
  add t rax r8;
  andi t rax 0xFFFF;
  add t rdx rax;
  andi t rdx 0xFFFF;
  addi t rdi 1;
  subi t rcx 1;
  jne t top;
  label t out;
  mov t r9 rdx;
  shl t r9 16;
  ins t (Insn.Alu (Insn.Or, W64.B8, Insn.Reg rax, Insn.RM (Insn.Reg r9)));
  ret t

(** 64-bit load/store with scaled index: rd <- [base + index*scale]. *)
let ldx t rd ~base ~index ?(scale = 8) ?(disp = 0) () =
  ins t
    (Insn.Mov
       (W64.B8, Insn.Reg rd,
        Insn.RM (Insn.Mem (Insn.mem ~base ~index ~scale ~disp:(Int64.of_int disp) ()))))

let stx t ~base ~index ?(scale = 8) ?(disp = 0) rs () =
  ins t
    (Insn.Mov
       (W64.B8, Insn.Mem (Insn.mem ~base ~index ~scale ~disp:(Int64.of_int disp) ()),
        Insn.RM (Insn.Reg rs)))

let ori t rd v = ins t (Insn.Alu (Insn.Or, W64.B8, Insn.Reg rd, Insn.Imm (Int64.of_int v)))
let orr t rd rs = ins t (Insn.Alu (Insn.Or, W64.B8, Insn.Reg rd, Insn.RM (Insn.Reg rs)))
let inc t rd = ins t (Insn.Unary (Insn.Inc, W64.B8, Insn.Reg rd))
let dec t rd = ins t (Insn.Unary (Insn.Dec, W64.B8, Insn.Reg rd))
let imuli t rd v =
  lii t r11 v;
  imul t rd r11

(** 32-bit load (zero-extended) / store. *)
let ld32 t rd ~base ?(disp = 0) ?index ?(scale = 1) () =
  ins t
    (Insn.Movzx
       (W64.B8, W64.B4, rd, Insn.Mem (Insn.mem ?index ~scale ~base ~disp:(Int64.of_int disp) ())))

let st32 t ~base ?(disp = 0) ?index ?(scale = 1) rs () =
  ins t
    (Insn.Mov
       (W64.B4, Insn.Mem (Insn.mem ?index ~scale ~base ~disp:(Int64.of_int disp) ()),
        Insn.RM (Insn.Reg rs)))

(** Invoke the hypervisor with a ptlcall command list (the in-guest
    [ptlctl] tool from §4.1 is exactly this wrapper). *)
let ptlctl t cmd =
  let l = cstring t cmd in
  la t rdi l;
  lii t rsi (String.length cmd);
  ins t Insn.Ptlcall

(** 16-bit load (zero-extended) / store. *)
let ld16 t rd ~base ?(disp = 0) ?index ?(scale = 1) () =
  ins t
    (Insn.Movzx
       (W64.B8, W64.B2, rd, Insn.Mem (Insn.mem ?index ~scale ~base ~disp:(Int64.of_int disp) ())))

let st16 t ~base ?(disp = 0) ?index ?(scale = 1) rs () =
  ins t
    (Insn.Mov
       (W64.B2, Insn.Mem (Insn.mem ?index ~scale ~base ~disp:(Int64.of_int disp) ()),
        Insn.RM (Insn.Reg rs)))

(** strlen(rdi=ptr) -> rax. Clobbers rcx. *)
let emit_strlen_fn t =
  label t "strlen";
  xor t rax rax;
  let top = fresh t "sl" in
  let out = fresh t "sl_done" in
  label t top;
  ldb t rcx ~base:rdi ~index:rax ();
  cmpi t rcx 0;
  je t out;
  inc t rax;
  jmp t top;
  label t out;
  ret t
