(** RC4-style stream cipher, in two matching forms: a guest assembly
    routine (the "ssh" encryption the paper's benchmark pipes all rsync
    traffic through, §5) and a host OCaml oracle used by the tests to
    verify the guest code byte for byte.

    Guest state layout: 256 bytes of S-box followed by one byte each for
    the i and j indices (258 bytes total). *)

module G = Gasm

let state_size = 258

(** rc4_init(rdi=state, rsi=key, rdx=keylen). Clobbers caller-saved. *)
let emit_init_fn g =
  G.label g "rc4_init";
  G.mov g G.r10 G.rdx (* keylen *);
  (* S[i] = i *)
  G.xor g G.rcx G.rcx;
  let fill = G.fresh g "rc4_fill" in
  G.label g fill;
  G.stb g ~base:G.rdi ~index:G.rcx G.rcx ();
  G.inc g G.rcx;
  G.cmpi g G.rcx 256;
  G.jne g fill;
  (* key schedule *)
  G.xor g G.r9 G.r9 (* j *);
  G.xor g G.rcx G.rcx (* i *);
  let ksa = G.fresh g "rc4_ksa" in
  G.label g ksa;
  G.ldb g G.r8 ~base:G.rdi ~index:G.rcx () (* S[i] *);
  (* rdx = i mod keylen *)
  G.mov g G.rax G.rcx;
  G.xor g G.rdx G.rdx;
  G.ins g (Ptl_isa.Insn.Muldiv (Ptl_isa.Insn.Div, Ptl_util.W64.B8, Ptl_isa.Insn.Reg G.r10));
  G.ldb g G.r11 ~base:G.rsi ~index:G.rdx () (* key byte *);
  G.add g G.r9 G.r8;
  G.add g G.r9 G.r11;
  G.andi g G.r9 255;
  (* swap S[i] <-> S[j] *)
  G.ldb g G.rax ~base:G.rdi ~index:G.r9 ();
  G.stb g ~base:G.rdi ~index:G.rcx G.rax ();
  G.stb g ~base:G.rdi ~index:G.r9 G.r8 ();
  G.inc g G.rcx;
  G.cmpi g G.rcx 256;
  G.jne g ksa;
  (* i = j = 0 *)
  G.xor g G.rax G.rax;
  G.stb g ~base:G.rdi ~disp:256 G.rax ();
  G.stb g ~base:G.rdi ~disp:257 G.rax ();
  G.ret g

(** rc4_crypt(rdi=state, rsi=buf, rdx=len): xors the keystream in place
    (encrypt = decrypt). Clobbers caller-saved; preserves rbx. *)
let emit_crypt_fn g =
  G.label g "rc4_crypt";
  G.push g G.rbx;
  G.mov g G.r10 G.rdx (* len *);
  G.ldb g G.r8 ~base:G.rdi ~disp:256 () (* i *);
  G.ldb g G.r9 ~base:G.rdi ~disp:257 () (* j *);
  G.xor g G.rcx G.rcx;
  let top = G.fresh g "rc4_top" in
  let out = G.fresh g "rc4_out" in
  G.label g top;
  G.cmp g G.rcx G.r10;
  G.je g out;
  G.inc g G.r8;
  G.andi g G.r8 255;
  G.ldb g G.rax ~base:G.rdi ~index:G.r8 () (* S[i] *);
  G.add g G.r9 G.rax;
  G.andi g G.r9 255;
  G.ldb g G.rdx ~base:G.rdi ~index:G.r9 () (* S[j] *);
  G.stb g ~base:G.rdi ~index:G.r8 G.rdx ();
  G.stb g ~base:G.rdi ~index:G.r9 G.rax ();
  G.add g G.rax G.rdx;
  G.andi g G.rax 255;
  G.ldb g G.r11 ~base:G.rdi ~index:G.rax () (* keystream byte *);
  G.ldb g G.rbx ~base:G.rsi ~index:G.rcx ();
  G.xor g G.rbx G.r11;
  G.stb g ~base:G.rsi ~index:G.rcx G.rbx ();
  G.inc g G.rcx;
  G.jmp g top;
  G.label g out;
  G.stb g ~base:G.rdi ~disp:256 G.r8 ();
  G.stb g ~base:G.rdi ~disp:257 G.r9 ();
  G.pop g G.rbx;
  G.ret g

(** Host-side oracle with identical semantics. *)
module Oracle = struct
  type t = { s : int array; mutable i : int; mutable j : int }

  let init key =
    let s = Array.init 256 (fun i -> i) in
    let j = ref 0 in
    for i = 0 to 255 do
      j := (!j + s.(i) + Char.code key.[i mod String.length key]) land 255;
      let tmp = s.(i) in
      s.(i) <- s.(!j);
      s.(!j) <- tmp
    done;
    { s; i = 0; j = 0 }

  let crypt t buf =
    Bytes.mapi
      (fun _ c ->
        t.i <- (t.i + 1) land 255;
        t.j <- (t.j + t.s.(t.i)) land 255;
        let tmp = t.s.(t.i) in
        t.s.(t.i) <- t.s.(t.j);
        t.s.(t.j) <- tmp;
        let k = t.s.((t.s.(t.i) + t.s.(t.j)) land 255) in
        Char.chr (Char.code c lxor k))
      buf

  let crypt_string t s = Bytes.to_string (crypt t (Bytes.of_string s))
end
