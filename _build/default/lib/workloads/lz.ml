(** LZ-lite compression — the "gzip" stage of the rsync pipeline (§5),
    again in two matching forms: guest assembly (hash-probe match finder,
    greedy emit) and a host OCaml oracle for testing both directions.

    Token format:
    - literal run:  0x00, len (1..255), raw bytes
    - match:        0x01, offset-lo, offset-hi (distance 1..65535), len (3..255)

    The compressor needs a 32768-entry * 8-byte hash table (256 KiB —
    gzip-class dictionary state, and the source of the benchmark's DTLB
    pressure) that the caller provides zeroed once per buffer; stale
    entries from earlier regions are rejected by the 3-byte verify, so
    re-zeroing per block is unnecessary. Compressed output is bounded by
    [max_compressed_size]. *)

module G = Gasm
module Flags = Ptl_isa.Flags

let hash_table_entries = 32768
let hash_table_size = hash_table_entries * 8

(* worst case: every byte a literal, 2 bytes of header per 255 *)
let max_compressed_size n = n + (n / 255 * 2) + 8

(** lz_compress(rdi=src, rsi=len, rdx=dst, rcx=hashtbl) -> rax = outlen.
    The hash table must be zeroed by the caller. *)
let emit_compress_fn g =
  G.label g "lz_compress";
  List.iter (G.push g) [ G.rbx; G.r12; G.r13; G.r14; G.r15; G.rbp ];
  G.mov g G.rbx G.rdi (* src *);
  G.mov g G.r12 G.rsi (* len *);
  G.mov g G.r13 G.rdx (* dst *);
  G.mov g G.r15 G.rcx (* tbl *);
  G.xor g G.r14 G.r14 (* out *);
  G.xor g G.r9 G.r9 (* pos *);
  G.xor g G.r10 G.r10 (* lit_start *);
  let main = G.fresh g "lzc_main" in
  let advance = G.fresh g "lzc_adv" in
  let tail = G.fresh g "lzc_tail" in
  (* flush_lits: emit literal tokens for [r10, r9). local "subroutine"
     inlined twice via a helper *)
  let emit_flush () =
    let fl_top = G.fresh g "lzc_fl" in
    let fl_done = G.fresh g "lzc_fl_done" in
    G.label g fl_top;
    G.cmp g G.r10 G.r9;
    G.jcc g Flags.AE fl_done;
    (* chunk = min(255, r9 - r10) in rbp *)
    G.mov g G.rbp G.r9;
    G.sub g G.rbp G.r10;
    G.cmpi g G.rbp 255;
    let small = G.fresh g "lzc_small" in
    G.jcc g Flags.BE small;
    G.lii g G.rbp 255;
    G.label g small;
    (* emit 0x00, chunk *)
    G.xor g G.rax G.rax;
    G.stb g ~base:G.r13 ~index:G.r14 G.rax ();
    G.inc g G.r14;
    G.stb g ~base:G.r13 ~index:G.r14 G.rbp ();
    G.inc g G.r14;
    (* copy chunk bytes *)
    let cp = G.fresh g "lzc_cp" in
    G.mov g G.rcx G.rbp;
    G.label g cp;
    G.ldb g G.rax ~base:G.rbx ~index:G.r10 ();
    G.stb g ~base:G.r13 ~index:G.r14 G.rax ();
    G.inc g G.r10;
    G.inc g G.r14;
    G.dec g G.rcx;
    G.jne g cp;
    G.jmp g fl_top;
    G.label g fl_done
  in
  G.label g main;
  (* need pos + 3 <= len *)
  G.mov g G.rax G.r9;
  G.addi g G.rax 3;
  G.cmp g G.rax G.r12;
  G.jcc g Flags.A tail;
  (* rax = 3 bytes at pos, packed *)
  G.ldb g G.rax ~base:G.rbx ~index:G.r9 ();
  G.ldb g G.rdx ~base:G.rbx ~index:G.r9 ~disp:1 ();
  G.shl g G.rdx 8;
  G.orr g G.rax G.rdx;
  G.ldb g G.rdx ~base:G.rbx ~index:G.r9 ~disp:2 ();
  G.shl g G.rdx 16;
  G.orr g G.rax G.rdx;
  G.mov g G.rbp G.rax (* keep packed bytes *);
  (* hash *)
  G.imuli g G.rax 2654435761;
  G.shr g G.rax 17;
  G.andi g G.rax 0x7FFF;
  (* candidate = tbl[h]; tbl[h] = pos+1 *)
  G.ldx g G.r8 ~base:G.r15 ~index:G.rax ();
  G.mov g G.rdx G.r9;
  G.inc g G.rdx;
  G.stx g ~base:G.r15 ~index:G.rax G.rdx ();
  G.cmpi g G.r8 0;
  G.je g advance;
  G.dec g G.r8 (* cand *);
  (* distance check: 1 <= pos - cand <= 0xFFFF *)
  G.mov g G.rdx G.r9;
  G.sub g G.rdx G.r8;
  G.cmpi g G.rdx 0;
  G.jcc g Flags.LE advance;
  G.lii g G.rax 0xFFFF;
  G.cmp g G.rdx G.rax;
  G.jcc g Flags.A advance;
  (* verify: packed bytes at cand equal rbp *)
  G.ldb g G.rax ~base:G.rbx ~index:G.r8 ();
  G.ldb g G.rcx ~base:G.rbx ~index:G.r8 ~disp:1 ();
  G.shl g G.rcx 8;
  G.orr g G.rax G.rcx;
  G.ldb g G.rcx ~base:G.rbx ~index:G.r8 ~disp:2 ();
  G.shl g G.rcx 16;
  G.orr g G.rax G.rcx;
  G.cmp g G.rax G.rbp;
  G.jne g advance;
  (* match found; rdx = distance. flush pending literals first *)
  emit_flush ();
  (* extend match length in rcx (3..255) *)
  G.lii g G.rcx 3;
  let ext = G.fresh g "lzc_ext" in
  let ext_done = G.fresh g "lzc_ext_done" in
  G.label g ext;
  G.cmpi g G.rcx 255;
  G.jcc g Flags.AE ext_done;
  G.mov g G.rax G.r9;
  G.add g G.rax G.rcx;
  G.cmp g G.rax G.r12;
  G.jcc g Flags.AE ext_done;
  (* src[cand+rcx] == src[pos+rcx]? *)
  G.mov g G.rbp G.r8;
  G.add g G.rbp G.rcx;
  G.ldb g G.rbp ~base:G.rbx ~index:G.rbp ();
  G.push g G.rdx;
  G.mov g G.rdx G.r9;
  G.add g G.rdx G.rcx;
  G.ldb g G.rdx ~base:G.rbx ~index:G.rdx ();
  G.cmp g G.rbp G.rdx;
  G.pop g G.rdx;
  G.jne g ext_done;
  G.inc g G.rcx;
  G.jmp g ext;
  G.label g ext_done;
  (* emit match token: 0x01, dist lo, dist hi, len *)
  G.lii g G.rax 1;
  G.stb g ~base:G.r13 ~index:G.r14 G.rax ();
  G.inc g G.r14;
  G.stb g ~base:G.r13 ~index:G.r14 G.rdx ();
  G.inc g G.r14;
  G.mov g G.rax G.rdx;
  G.shr g G.rax 8;
  G.stb g ~base:G.r13 ~index:G.r14 G.rax ();
  G.inc g G.r14;
  G.stb g ~base:G.r13 ~index:G.r14 G.rcx ();
  G.inc g G.r14;
  (* pos += len; lit_start = pos *)
  G.add g G.r9 G.rcx;
  G.mov g G.r10 G.r9;
  G.jmp g main;
  G.label g advance;
  G.inc g G.r9;
  G.jmp g main;
  G.label g tail;
  (* flush trailing literals [lit_start, len) *)
  G.mov g G.r9 G.r12;
  emit_flush ();
  G.mov g G.rax G.r14;
  List.iter (G.pop g) [ G.rbp; G.r15; G.r14; G.r13; G.r12; G.rbx ];
  G.ret g

(** lz_decompress(rdi=src, rsi=srclen, rdx=dst) -> rax = outlen. *)
let emit_decompress_fn g =
  G.label g "lz_decompress";
  List.iter (G.push g) [ G.rbx; G.r12; G.r13; G.r14 ];
  G.mov g G.rbx G.rdi (* src *);
  G.mov g G.r12 G.rsi (* srclen *);
  G.mov g G.r13 G.rdx (* dst *);
  G.xor g G.r14 G.r14 (* out *);
  G.xor g G.r9 G.r9 (* in *);
  let top = G.fresh g "lzd_top" in
  let fin = G.fresh g "lzd_fin" in
  let matcht = G.fresh g "lzd_match" in
  G.label g top;
  G.cmp g G.r9 G.r12;
  G.jcc g Flags.AE fin;
  G.ldb g G.rax ~base:G.rbx ~index:G.r9 ();
  G.inc g G.r9;
  G.cmpi g G.rax 0;
  G.jne g matcht;
  (* literal run: len, bytes *)
  G.ldb g G.rcx ~base:G.rbx ~index:G.r9 ();
  G.inc g G.r9;
  let lit = G.fresh g "lzd_lit" in
  G.label g lit;
  G.ldb g G.rax ~base:G.rbx ~index:G.r9 ();
  G.stb g ~base:G.r13 ~index:G.r14 G.rax ();
  G.inc g G.r9;
  G.inc g G.r14;
  G.dec g G.rcx;
  G.jne g lit;
  G.jmp g top;
  G.label g matcht;
  (* offset lo/hi, len *)
  G.ldb g G.rdx ~base:G.rbx ~index:G.r9 ();
  G.ldb g G.rax ~base:G.rbx ~index:G.r9 ~disp:1 ();
  G.shl g G.rax 8;
  G.orr g G.rdx G.rax;
  G.ldb g G.rcx ~base:G.rbx ~index:G.r9 ~disp:2 ();
  G.addi g G.r9 3;
  (* copy rcx bytes from dst[out-off], overlap-safe byte order *)
  G.mov g G.r8 G.r14;
  G.sub g G.r8 G.rdx;
  let mcp = G.fresh g "lzd_mcp" in
  G.label g mcp;
  G.ldb g G.rax ~base:G.r13 ~index:G.r8 ();
  G.stb g ~base:G.r13 ~index:G.r14 G.rax ();
  G.inc g G.r8;
  G.inc g G.r14;
  G.dec g G.rcx;
  G.jne g mcp;
  G.jmp g top;
  G.label g fin;
  G.mov g G.rax G.r14;
  List.iter (G.pop g) [ G.r14; G.r13; G.r12; G.rbx ];
  G.ret g

(** Host-side oracles (same format, for cross-validation). *)
module Oracle = struct
  let compress (src : string) : string =
    let n = String.length src in
    let out = Buffer.create (n / 2) in
    let tbl = Array.make 32768 0 in
    let flush lit_start upto =
      let pos = ref lit_start in
      while !pos < upto do
        let chunk = min 255 (upto - !pos) in
        Buffer.add_char out '\x00';
        Buffer.add_char out (Char.chr chunk);
        Buffer.add_substring out src !pos chunk;
        pos := !pos + chunk
      done
    in
    let pos = ref 0 in
    let lit_start = ref 0 in
    while !pos + 3 <= n do
      let packed =
        Char.code src.[!pos]
        lor (Char.code src.[!pos + 1] lsl 8)
        lor (Char.code src.[!pos + 2] lsl 16)
      in
      let h =
        Int64.to_int
          (Int64.logand
             (Int64.shift_right_logical
                (Int64.mul (Int64.of_int packed) 2654435761L)
                17)
             0x7FFFL)
      in
      let cand = tbl.(h) in
      tbl.(h) <- !pos + 1;
      let dist = if cand > 0 then !pos - (cand - 1) else 0 in
      if
        cand > 0 && dist >= 1 && dist <= 0xFFFF
        && src.[cand - 1] = src.[!pos]
        && src.[cand] = src.[!pos + 1]
        && src.[cand + 1] = src.[!pos + 2]
      then begin
        flush !lit_start !pos;
        let c = cand - 1 in
        let len = ref 3 in
        while !len < 255 && !pos + !len < n && src.[c + !len] = src.[!pos + !len] do
          incr len
        done;
        Buffer.add_char out '\x01';
        Buffer.add_char out (Char.chr (dist land 0xFF));
        Buffer.add_char out (Char.chr ((dist lsr 8) land 0xFF));
        Buffer.add_char out (Char.chr !len);
        pos := !pos + !len;
        lit_start := !pos
      end
      else incr pos
    done;
    flush !lit_start n;
    Buffer.contents out

  let decompress (src : string) : string =
    let out = Buffer.create (String.length src * 2) in
    let i = ref 0 in
    let n = String.length src in
    while !i < n do
      let tok = Char.code src.[!i] in
      incr i;
      if tok = 0 then begin
        let len = Char.code src.[!i] in
        incr i;
        Buffer.add_substring out src !i len;
        i := !i + len
      end
      else begin
        let off = Char.code src.[!i] lor (Char.code src.[!i + 1] lsl 8) in
        let len = Char.code src.[!i + 2] in
        i := !i + 3;
        for _ = 1 to len do
          Buffer.add_char out (Buffer.nth out (Buffer.length out - off))
        done
      end
    done;
    Buffer.contents out
end
