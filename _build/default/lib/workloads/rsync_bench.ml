(** Assembly of the paper's §5 experiment: the rsync-over-ssh full-system
    benchmark, ready to launch under the monitor, plus the Table 1 metric
    extraction.

    Two machine configurations reproduce the paper's comparison:
    - ["k8-silicon"] ({!Ptl_ooo.Config.k8_silicon}): the reference Athlon 64
      — two-level DTLB + PDE cache, hardware prefetcher, the real chip's
      slightly weaker direction predictor, and uop-triad retirement
      counting;
    - ["k8-ptlsim"] ({!Ptl_ooo.Config.k8_ptlsim}): the paper's PTLsim model
      of the same machine.

    Running the identical workload under both and diffing the counters
    reproduces each row of Table 1 (see EXPERIMENTS.md for the mapping and
    the expected sign/magnitude of every delta). *)

module Stats = Ptl_stats.Statstree
module Config = Ptl_ooo.Config
module Kernel = Ptl_kernel.Kernel
module Ptlmon = Ptl_hyper.Ptlmon
module Domain = Ptl_hyper.Domain

let spec ?(fileset = Fileset.default) ?(machine = Config.k8_ptlsim)
    ?(snapshot_interval = Some 2_200_000) () =
  {
    Ptlmon.programs = Rsync_progs.programs ();
    files = Fileset.generate fileset;
    kernel_config = Kernel.default_config;
    machine_config = machine;
    core = "ooo";
    snapshot_interval;
  }

(** Run the benchmark fully in simulation mode; returns the domain (with
    stats, timelapse and markers populated) and the kernel. *)
let run ?fileset ?machine ?snapshot_interval ?(max_cycles = 4_000_000_000) () =
  let d, k = Ptlmon.launch (spec ?fileset ?machine ?snapshot_interval ()) in
  (* the whole run is cycle-accurate: enter simulation before boot *)
  Domain.submit d "-core ooo -run";
  ignore (Domain.run ~max_cycles d);
  (d, k)

(** The Table 1 metrics extracted from a finished run's statistics tree.
    All counts are raw (the table formatter scales to thousands). *)
type metrics = {
  m_cycles : int;
  m_insns : int;
  m_uops : int;
  m_l1d_misses : int;
  m_l1d_accesses : int;
  m_branches : int;
  m_mispredicts : int;
  m_dtlb_misses : int;
  m_dtlb_accesses : int;
}

let metrics_of_stats ?(prefix = "ooo") stats ~triads =
  let g path = Stats.get stats path in
  let p suffix = prefix ^ "." ^ suffix in
  {
    m_cycles = g (p "cycles") + g "domain.cycles_in_mode.idle";
    m_insns = g (p "commit.insns");
    m_uops = (if triads then g (p "commit.triads") else g (p "commit.uops"));
    m_l1d_misses = g (p "mem.L1D.misses");
    m_l1d_accesses = g (p "mem.L1D.misses") + g (p "mem.L1D.hits");
    m_branches = g (p "commit.branches");
    m_mispredicts = g (p "commit.mispredicts");
    m_dtlb_misses = g (p "dcache.dtlb_misses");
    m_dtlb_accesses = g (p "dcache.dtlb_accesses");
  }

(** Verify the synchronization outcome: every dst file must now equal its
    src counterpart (functional correctness of the whole pipeline). *)
let verify_sync (k : Kernel.t) =
  let fs = k.Kernel.fs in
  let srcs = Ptl_kernel.Ramfs.list_dir fs ~prefix:"src/" in
  List.for_all
    (fun sname ->
      let tail = String.sub sname 4 (String.length sname - 4) in
      match (Ptl_kernel.Ramfs.find fs sname, Ptl_kernel.Ramfs.find fs ("dst/" ^ tail)) with
      | Some s, Some d ->
        s.Ptl_kernel.Ramfs.size = d.Ptl_kernel.Ramfs.size
        && Bytes.equal
             (Bytes.sub s.Ptl_kernel.Ramfs.data 0 s.Ptl_kernel.Ramfs.size)
             (Bytes.sub d.Ptl_kernel.Ramfs.data 0 d.Ptl_kernel.Ramfs.size)
      | _ -> false)
    srcs
