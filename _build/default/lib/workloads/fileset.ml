(** Generator for the rsync benchmark's file set.

    The paper uses 6186 text files, all under 300 KB, 48 MB total, "divided
    into two roughly equal groups; the test consists of running rsync to
    synchronize the second group with the first group" (§5). This generator
    produces the same shape at a configurable scale: "src/NNN" is the
    authoritative group; "dst/NNN" is the stale copy — identical, modified
    in a few blocks, or missing entirely. Content is deterministic
    word-salad text from the seeded RNG, so runs are reproducible. *)

open Ptl_util

type config = {
  nfiles : int;
  min_size : int;
  max_size : int;
  seed : int;
  (* probabilities (out of 100) for the dst variant of each file *)
  pct_identical : int;
  pct_modified : int;  (* remainder = missing from dst *)
}

(** Default: a laptop-scale rendition of the paper's set (the harness
    records the scale used in EXPERIMENTS.md). *)
let default = {
  nfiles = 24;
  min_size = 8_192;
  max_size = 49_152;
  seed = 20070417 (* ISPASS'07 *);
  pct_identical = 40;
  pct_modified = 35;
}

let words =
  [| "the"; "quick"; "brown"; "fox"; "jumps"; "over"; "lazy"; "dog"; "cycle";
     "accurate"; "simulator"; "pipeline"; "cache"; "branch"; "predictor";
     "physical"; "register"; "uop"; "commit"; "fetch"; "issue"; "queue";
     "xen"; "hypervisor"; "domain"; "kernel"; "userspace"; "interrupt";
     "translation"; "lookaside"; "buffer"; "speculative"; "x86" |]

let make_text rng size =
  let buf = Buffer.create (size + 16) in
  while Buffer.length buf < size do
    Buffer.add_string buf (Rng.choose rng words);
    Buffer.add_char buf (if Rng.int rng 12 = 0 then '\n' else ' ')
  done;
  Buffer.sub buf 0 size

(* Flip bytes in a few random 1 KiB blocks. *)
let mutate rng text =
  let b = Bytes.of_string text in
  let nblocks = (Bytes.length b + 1023) / 1024 in
  let changes = 1 + Rng.int rng (max 1 (nblocks / 2)) in
  for _ = 1 to changes do
    let blk = Rng.int rng nblocks in
    let base = blk * 1024 in
    let len = min 1024 (Bytes.length b - base) in
    for k = 0 to min 40 (len - 1) do
      let off = base + Rng.int rng len in
      ignore k;
      Bytes.set b off (Char.chr (Rng.int rng 26 + 97))
    done
  done;
  Bytes.to_string b

(** Generate the full file list [(name, contents); ...] for the ramfs. *)
let generate (cfg : config) =
  let rng = Rng.create cfg.seed in
  let files = ref [] in
  if cfg.max_size < cfg.min_size || cfg.min_size <= 0 then
    invalid_arg "Fileset.generate: need 0 < min_size <= max_size";
  for i = 0 to cfg.nfiles - 1 do
    let size = cfg.min_size + Rng.int rng (cfg.max_size - cfg.min_size + 1) in
    let content = make_text rng size in
    let name = Printf.sprintf "f%03d" i in
    files := ("src/" ^ name, content) :: !files;
    let roll = Rng.int rng 100 in
    if roll < cfg.pct_identical then
      files := ("dst/" ^ name, content) :: !files
    else if roll < cfg.pct_identical + cfg.pct_modified then
      files := ("dst/" ^ name, mutate rng content) :: !files
    (* else: missing from dst *)
  done;
  List.rev !files

(** Total bytes in the src group (the "48 Mbytes" figure at this scale). *)
let src_bytes files =
  List.fold_left
    (fun acc (name, c) ->
      if String.length name >= 4 && String.sub name 0 4 = "src/" then
        acc + String.length c
      else acc)
    0 files
