lib/workloads/rsync_bench.ml: Bytes Fileset List Ptl_hyper Ptl_kernel Ptl_ooo Ptl_stats Rsync_progs String
