lib/workloads/crypto.ml: Array Bytes Char Gasm Ptl_isa Ptl_util String
