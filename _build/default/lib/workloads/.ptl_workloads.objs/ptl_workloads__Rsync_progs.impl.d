lib/workloads/rsync_progs.ml: Crypto Gasm List Lz Ptl_isa Ptl_kernel String
