lib/workloads/gasm.ml: Int64 Printf Ptl_isa Ptl_kernel Ptl_util String W64
