lib/workloads/microbench.ml: Array Buffer Char Gasm Int64 List Ptl_arch Ptl_isa Ptl_util Rng W64
