lib/workloads/fileset.ml: Buffer Bytes Char List Printf Ptl_util Rng String
