lib/workloads/lz.ml: Array Buffer Char Gasm Int64 List Ptl_isa String
