(** The rsync-over-ssh benchmark programs (§5 of the paper), as real guest
    code: four processes exactly like the original —

    - [rsync_client]: builds the file list (readdir/stat), runs the rsync
      delta algorithm (rolling checksums per 1 KiB block), compresses
      changed blocks (LZ-lite = the gzip stage) and ships them through its
      ssh tunnel;
    - [ssh_client]: encrypts/decrypts the byte stream (RC4) between the
      client's pipes and a loopback TCP connection to port 22;
    - [sshd]: accepts the connection, spawns the server, and relays with
      the mirrored cipher directions;
    - [rsync_server]: answers per-file block checksums, decompresses
      received blocks and reconstructs the destination files.

    All traffic crosses the kernel's pipes and the TCP-lite loopback (with
    MTU segmentation and per-packet latency), so the full-system effects
    of Figure 2 — kernel time, idle time waiting on I/O, page-ins — are
    genuinely simulated.

    Wire protocol (framed, strictly request/response at file granularity):
    {v
      frame       := [u32 total][u8 op][payload]      (client -> server)
      OP_FILE(1)  := [u8 namelen][name][u32 newsize]
         reply    := [u32 len][u32 nblocks][u64 csum xnblocks]
      OP_BLOCK(2) := [u32 index][u16 rawlen][u16 complen][bytes]
      OP_DONE3(3) := file done (write reconstruction)
      OP_QUIT(4)  := end of run;  reply := [u32 4][u32 0]
    v} *)

module G = Gasm
module Abi = Ptl_kernel.Abi
module Flags = Ptl_isa.Flags

let block = 1024

(* user heap layout (offsets from Abi.user_heap_base) *)
let off_fbuf = 0x00000 (* 64 KiB file / reconstruction buffer *)
let off_cbuf = 0x10000 (* compressed block *)
let off_csums = 0x11000 (* remote checksums, u64 each *)
let off_msg = 0x11400 (* frame assembly / dirents *)
let off_names = 0x12400 (* file list arena, stride 64 *)
let off_path = 0x16400 (* path assembly *)
let off_rc4_up = 0x16500
let off_rc4_down = 0x16700
let off_iobuf = 0x16a00 (* relay buffer *)
let off_tbl = 0x20000 (* LZ hash table, 256 KiB (0x20000..0x60000) *)

let op_file = 1
let op_block = 2
let op_filedone = 3
let op_quit = 4

let name_stride = 64

(* rbp <- heap base; every program keeps it there *)
let load_heap g = G.li g G.rbp Abi.user_heap_base

(* lea reg <- rbp + off *)
let heap_addr g reg off =
  G.mov g reg G.rbp;
  G.addi g reg off

(* ---------------- rsync client ---------------- *)

(* client fd conventions: pipes made before spawn: C=(0r,1w), D=(2r,3w);
   the client keeps 1 (to ssh) and 2 (from ssh) and closes 0 and 3. *)
let client_out = 1
let client_in = 2

let emit_client_libs g =
  G.emit_memcpy_fn g;
  G.emit_memset_fn g;
  G.emit_read_full_fn g;
  G.emit_write_full_fn g;
  G.emit_checksum_fn g;
  G.emit_strlen_fn g;
  Lz.emit_compress_fn g

(* write_full(out, msg, 4 + framelen); frame length word already at msg *)
let emit_send_frame g =
  G.label g "send_frame";
  heap_addr g G.rsi off_msg;
  G.ld32 g G.rdx ~base:G.rsi ();
  G.addi g G.rdx 4;
  G.lii g G.rdi client_out;
  G.call g "write_full";
  G.ret g

(* read a reply frame into msg: [u32 len][payload]; returns len in rax.
   Preserves rbx (the caller's file-entry pointer). *)
let emit_read_reply g =
  G.label g "read_reply";
  G.push g G.rbx;
  G.lii g G.rdi client_in;
  heap_addr g G.rsi off_msg;
  G.lii g G.rdx 4;
  G.call g "read_full";
  heap_addr g G.rsi off_msg;
  G.ld32 g G.rbx ~base:G.rsi ();
  G.lii g G.rdi client_in;
  heap_addr g G.rsi off_msg;
  G.addi g G.rsi 4;
  G.mov g G.rdx G.rbx;
  G.call g "read_full";
  G.mov g G.rax G.rbx;
  G.pop g G.rbx;
  G.ret g

(* ---------------- rsync server ---------------- *)

(* server fds (inherited from sshd): 2 = from sshd, 5 = to sshd *)
let server_in = 2
let server_out = 5

let rsync_server () =
  let g = G.create () in
  G.jmp g "main";
  G.emit_memcpy_fn g;
  G.emit_read_full_fn g;
  G.emit_write_full_fn g;
  G.emit_checksum_fn g;
  Lz.emit_decompress_fn g;
  (* read one frame into msg (+4 offset payload); rax = payload len, or
     negative on EOF *)
  G.label g "read_frame";
  G.lii g G.rdi server_in;
  heap_addr g G.rsi off_msg;
  G.lii g G.rdx 4;
  G.call g "read_full";
  G.cmpi g G.rax 4;
  G.jne g "rf_eof";
  heap_addr g G.rsi off_msg;
  G.ld32 g G.rbx ~base:G.rsi ();
  G.lii g G.rdi server_in;
  heap_addr g G.rsi off_msg;
  G.addi g G.rsi 4;
  G.mov g G.rdx G.rbx;
  G.call g "read_full";
  G.mov g G.rax G.rbx;
  G.ret g;
  G.label g "rf_eof";
  G.lii g G.rax (-1);
  G.ret g;

  G.label g "main";
  load_heap g;
  (* close unused inherited fds *)
  List.iter
    (fun fd ->
      G.lii g G.rdi fd;
      G.syscall g Abi.sys_close)
    [ 0; 1; 3; 4 ];
  G.xor g G.r12 G.r12 (* old size *);
  G.xor g G.r13 G.r13 (* new size *);
  G.label g "srv_top";
  G.call g "read_frame";
  G.cmpi g G.rax 0;
  G.jcc g Flags.LE "srv_exit";
  heap_addr g G.rsi off_msg;
  G.ldb g G.rax ~base:G.rsi ~disp:4 ();
  G.cmpi g G.rax op_file;
  G.je g "srv_file";
  G.cmpi g G.rax op_block;
  G.je g "srv_block";
  G.cmpi g G.rax op_filedone;
  G.je g "srv_filedone";
  G.cmpi g G.rax op_quit;
  G.je g "srv_quit";
  G.jmp g "srv_exit";

  (* ---- OP_FILE ---- *)
  G.label g "srv_file";
  heap_addr g G.rsi off_msg;
  G.ldb g G.rbx ~base:G.rsi ~disp:5 () (* namelen *);
  (* newsize (u32 after the name) *)
  G.mov g G.rax G.rsi;
  G.add g G.rax G.rbx;
  G.ld32 g G.r13 ~base:G.rax ~disp:6 ();
  (* path = "dst/" ^ name *)
  heap_addr g G.rdi off_path;
  G.lii g G.rdx 100 (* 'd' *);
  G.stb g ~base:G.rdi G.rdx ();
  G.lii g G.rdx 115 (* 's' *);
  G.stb g ~base:G.rdi ~disp:1 G.rdx ();
  G.lii g G.rdx 116 (* 't' *);
  G.stb g ~base:G.rdi ~disp:2 G.rdx ();
  G.lii g G.rdx 47 (* '/' *);
  G.stb g ~base:G.rdi ~disp:3 G.rdx ();
  G.addi g G.rdi 4;
  heap_addr g G.rsi off_msg;
  G.addi g G.rsi 6;
  G.mov g G.rdx G.rbx;
  G.call g "memcpy";
  heap_addr g G.rdi off_path;
  G.add g G.rdi G.rbx;
  G.xor g G.rdx G.rdx;
  G.stb g ~base:G.rdi ~disp:4 G.rdx () (* NUL *);
  (* old size via stat (into csums scratch) *)
  G.xor g G.r12 G.r12;
  heap_addr g G.rdi off_path;
  heap_addr g G.rsi off_csums;
  G.syscall g Abi.sys_stat;
  G.cmpi g G.rax 0;
  G.jne g "no_old";
  heap_addr g G.rsi off_csums;
  G.ld g G.r12 ~base:G.rsi ();
  (* read old content into fbuf *)
  heap_addr g G.rdi off_path;
  G.lii g G.rsi 0;
  G.syscall g Abi.sys_open;
  G.push g G.rax;
  G.mov g G.rdi G.rax;
  heap_addr g G.rsi off_fbuf;
  G.mov g G.rdx G.r12;
  G.call g "read_full";
  G.pop g G.rdi;
  G.syscall g Abi.sys_close;
  G.label g "no_old";
  (* build the checksum reply: nblocks over the OLD content *)
  G.mov g G.rbx G.r12;
  G.addi g G.rbx (block - 1);
  G.shr g G.rbx 10 (* nblocks *);
  heap_addr g G.rdi off_msg;
  G.mov g G.rdx G.rbx;
  G.shl g G.rdx 3;
  G.addi g G.rdx 4;
  G.st32 g ~base:G.rdi G.rdx () (* frame len *);
  G.st32 g ~base:G.rdi ~disp:4 G.rbx ();
  (* per-block checksums; r14 = block idx *)
  G.xor g G.r14 G.r14;
  G.label g "ck_top";
  G.cmp g G.r14 G.rbx;
  G.jcc g Flags.AE "ck_done";
  G.mov g G.rax G.r14;
  G.shl g G.rax 10;
  G.mov g G.rdx G.r12;
  G.sub g G.rdx G.rax;
  G.cmpi g G.rdx block;
  G.jcc g Flags.BE "sck_ok";
  G.lii g G.rdx block;
  G.label g "sck_ok";
  heap_addr g G.rdi off_fbuf;
  G.add g G.rdi G.rax;
  G.mov g G.rsi G.rdx;
  G.call g "checksum";
  (* store at msg+8 + idx*8 *)
  G.mov g G.rdx G.r14;
  G.shl g G.rdx 3;
  G.add g G.rdx G.rbp;
  G.st g ~base:G.rdx ~disp:(off_msg + 8) G.rax ();
  G.inc g G.r14;
  G.jmp g "ck_top";
  G.label g "ck_done";
  (* send the reply *)
  G.lii g G.rdi server_out;
  heap_addr g G.rsi off_msg;
  G.mov g G.rdx G.rbx;
  G.shl g G.rdx 3;
  G.addi g G.rdx 8;
  G.call g "write_full";
  G.jmp g "srv_top";

  (* ---- OP_BLOCK ---- *)
  G.label g "srv_block";
  heap_addr g G.rsi off_msg;
  G.ld32 g G.rbx ~base:G.rsi ~disp:5 () (* idx *);
  G.ld16 g G.rdx ~base:G.rsi ~disp:11 () (* complen *);
  (* decompress msg+13 into fbuf + idx*1024 *)
  G.mov g G.rdi G.rsi;
  G.addi g G.rdi 13;
  G.mov g G.rsi G.rdx;
  G.mov g G.rdx G.rbx;
  G.shl g G.rdx 10;
  G.add g G.rdx G.rbp;
  G.addi g G.rdx off_fbuf;
  G.call g "lz_decompress";
  G.jmp g "srv_top";

  (* ---- OP_FILEDONE: write the reconstruction ---- *)
  G.label g "srv_filedone";
  heap_addr g G.rdi off_path;
  G.syscall g Abi.sys_creat;
  G.push g G.rax;
  G.mov g G.rdi G.rax;
  heap_addr g G.rsi off_fbuf;
  G.mov g G.rdx G.r13;
  G.call g "write_full";
  G.pop g G.rdi;
  G.syscall g Abi.sys_close;
  G.jmp g "srv_top";

  (* ---- OP_QUIT ---- *)
  G.label g "srv_quit";
  heap_addr g G.rdi off_msg;
  G.lii g G.rdx 4;
  G.st32 g ~base:G.rdi G.rdx ();
  G.xor g G.rdx G.rdx;
  G.st32 g ~base:G.rdi ~disp:4 G.rdx ();
  G.lii g G.rdi server_out;
  heap_addr g G.rsi off_msg;
  G.lii g G.rdx 8;
  G.call g "write_full";
  G.label g "srv_exit";
  G.sys_exit g 0;
  G.assemble g

(* ---------------- ssh relays ---------------- *)

(* The bidirectional encrypting pump shared by ssh_client and sshd.
   in_fd/out_fd are immediates; the socket fd is in r12. *)
let emit_relay g ~in_fd ~out_fd =
  G.label g "relay";
  G.label g "rl_top";
  G.lii g G.rdi in_fd;
  G.mov g G.rsi G.r12;
  G.syscall g Abi.sys_poll2;
  G.cmpi g G.rax 0;
  G.jne g "rl_sock";
  (* pipe side readable *)
  G.lii g G.rdi in_fd;
  heap_addr g G.rsi off_iobuf;
  G.lii g G.rdx 1024;
  G.syscall g Abi.sys_read;
  G.cmpi g G.rax 0;
  G.jcc g Flags.LE "rl_done";
  G.push g G.rax;
  heap_addr g G.rdi off_rc4_up;
  heap_addr g G.rsi off_iobuf;
  G.mov g G.rdx G.rax;
  G.call g "rc4_crypt";
  G.pop g G.rdx;
  G.mov g G.rdi G.r12;
  heap_addr g G.rsi off_iobuf;
  G.call g "write_full";
  G.jmp g "rl_top";
  G.label g "rl_sock";
  G.mov g G.rdi G.r12;
  heap_addr g G.rsi off_iobuf;
  G.lii g G.rdx 1024;
  G.syscall g Abi.sys_read;
  G.cmpi g G.rax 0;
  G.jcc g Flags.LE "rl_done";
  G.push g G.rax;
  heap_addr g G.rdi off_rc4_down;
  heap_addr g G.rsi off_iobuf;
  G.mov g G.rdx G.rax;
  G.call g "rc4_crypt";
  G.pop g G.rdx;
  G.lii g G.rdi out_fd;
  heap_addr g G.rsi off_iobuf;
  G.call g "write_full";
  G.jmp g "rl_top";
  G.label g "rl_done";
  G.ret g

let init_rc4 g ~up_key ~down_key =
  let ku = G.cstring g up_key in
  let kd = G.cstring g down_key in
  heap_addr g G.rdi off_rc4_up;
  G.la g G.rsi ku;
  G.lii g G.rdx (String.length up_key);
  G.call g "rc4_init";
  heap_addr g G.rdi off_rc4_down;
  G.la g G.rsi kd;
  G.lii g G.rdx (String.length down_key);
  G.call g "rc4_init"

(* ssh client: inherits pipes 0..3; pumps 0 -> socket (encrypt c2s) and
   socket -> 3 (decrypt s2c). *)
let ssh_client () =
  let g = G.create () in
  G.jmp g "main";
  Crypto.emit_init_fn g;
  Crypto.emit_crypt_fn g;
  G.emit_write_full_fn g;
  emit_relay g ~in_fd:0 ~out_fd:3;
  G.label g "main";
  load_heap g;
  (* close the ends the client kept *)
  G.lii g G.rdi 1;
  G.syscall g Abi.sys_close;
  G.lii g G.rdi 2;
  G.syscall g Abi.sys_close;
  G.syscall g Abi.sys_socket;
  G.mov g G.r12 G.rax;
  (* connect to sshd on port 22, retrying until it listens *)
  G.label g "conn_retry";
  G.mov g G.rdi G.r12;
  G.lii g G.rsi 22;
  G.syscall g Abi.sys_connect;
  G.cmpi g G.rax 0;
  G.je g "connected";
  G.lii g G.rdi 20_000;
  G.syscall g Abi.sys_sleep;
  G.jmp g "conn_retry";
  G.label g "connected";
  init_rc4 g ~up_key:"c2s-tunnel-key" ~down_key:"s2c-tunnel-key";
  G.call g "relay";
  G.sys_exit g 0;
  G.assemble g

(* sshd: listens on 22, accepts, spawns the server over fresh pipes, and
   pumps socket -> pipe (decrypt c2s) and pipe -> socket (encrypt s2c).
   fd map after setup: 0 = listener, 1 = connection, 2/3 = pipe to server,
   4/5 = pipe from server. *)
let sshd () =
  let g = G.create () in
  G.jmp g "main";
  Crypto.emit_init_fn g;
  Crypto.emit_crypt_fn g;
  G.emit_write_full_fn g;
  (* relay with swapped cipher roles: in = pipe 4 encrypted with up (s2c),
     socket decrypted with down (c2s) *)
  emit_relay g ~in_fd:4 ~out_fd:3;
  G.label g "main";
  load_heap g;
  G.syscall g Abi.sys_socket;
  G.mov g G.rdi G.rax;
  G.lii g G.rsi 22;
  G.syscall g Abi.sys_listen;
  G.lii g G.rdi 0;
  G.syscall g Abi.sys_accept;
  G.mov g G.r12 G.rax (* connection *);
  (* pipes to/from the rsync server *)
  heap_addr g G.rdi off_msg;
  G.syscall g Abi.sys_pipe (* fds 2,3 *);
  heap_addr g G.rdi off_msg;
  G.addi g G.rdi 8;
  G.syscall g Abi.sys_pipe (* fds 4,5 *);
  (* spawn the server: it reads 2, writes 5 *)
  let srv = G.cstring g "rsync_server" in
  G.la g G.rdi srv;
  G.lii g G.rsi (2 lor (5 lsl 8));
  G.syscall g Abi.sys_spawn;
  (* keep 3 (write to server) and 4 (read from server) *)
  G.lii g G.rdi 2;
  G.syscall g Abi.sys_close;
  G.lii g G.rdi 5;
  G.syscall g Abi.sys_close;
  init_rc4 g ~up_key:"s2c-tunnel-key" ~down_key:"c2s-tunnel-key";
  G.call g "relay";
  G.sys_exit g 0;
  G.assemble g

(* init: orchestrates the whole benchmark like the paper's modified
   /sbin/init script: start sshd, start the client (which plays rsync +
   ssh), wait, then terminate the domain (ptlctl -kill analogue). *)
let init_prog ?(pre_spawn_marker = true) () =
  let g = G.create () in
  G.jmp g "main";
  G.label g "main";
  if pre_spawn_marker then G.sys_marker g 0;
  let sshd_name = G.cstring g "sshd" in
  G.la g G.rdi sshd_name;
  G.lii g G.rsi 0;
  G.syscall g Abi.sys_spawn;
  (* give sshd a chance to listen before the tunnel dials *)
  G.lii g G.rdi 100_000;
  G.syscall g Abi.sys_sleep;
  let client_name = G.cstring g "rsync_client" in
  G.la g G.rdi client_name;
  G.lii g G.rsi 0;
  G.syscall g Abi.sys_spawn;
  G.mov g G.r12 G.rax;
  G.mov g G.rdi G.r12;
  G.syscall g Abi.sys_waitpid;
  (* phase (g): shutdown; stop the domain *)
  G.sys_marker g 999;
  G.sys_exit g 0;
  G.assemble g

(* rsync client: creates its pipes (C = (0,1) to ssh, D = (2,3) back),
   spawns ssh_client, then runs the file-list / delta / transmit loop. *)
let rsync_client_full () =
  let g = G.create () in
  G.jmp g "main";
  emit_client_libs g;
  emit_send_frame g;
  emit_read_reply g;
  G.label g "main";
  load_heap g;
  G.sys_marker g 1;
  (* pipes: C = (0,1) client->ssh, D = (2,3) ssh->client *)
  heap_addr g G.rdi off_msg;
  G.syscall g Abi.sys_pipe;
  heap_addr g G.rdi off_msg;
  G.addi g G.rdi 8;
  G.syscall g Abi.sys_pipe;
  let ssh_name = G.cstring g "ssh_client" in
  G.la g G.rdi ssh_name;
  G.lii g G.rsi 0;
  G.syscall g Abi.sys_spawn;
  (* close the ends ssh keeps: C.r (0) and D.w (3) *)
  G.lii g G.rdi 0;
  G.syscall g Abi.sys_close;
  G.lii g G.rdi 3;
  G.syscall g Abi.sys_close;
  G.sys_marker g 2;
  G.jmp g "after_setup";
  G.label g "after_setup";
  (* ---- from here the body matches rsync_client: file list etc. ---- *)
  let dirp = G.cstring g "src/" in
  G.xor g G.r12 G.r12;
  G.label g "list_top";
  G.la g G.rdi dirp;
  G.mov g G.rsi G.r12;
  heap_addr g G.rdx off_msg;
  G.syscall g Abi.sys_readdir;
  G.cmpi g G.rax 0;
  G.jcc g Flags.L "list_done";
  G.mov g G.rbx G.r12;
  G.shl g G.rbx 6;
  G.add g G.rbx G.rbp;
  G.addi g G.rbx off_names;
  heap_addr g G.rsi off_msg;
  G.ld g G.rdx ~base:G.rsi ();
  G.st g ~base:G.rbx G.rdx ();
  G.mov g G.rdx G.rax;
  G.subi g G.rdx 8;
  G.mov g G.rdi G.rbx;
  G.addi g G.rdi 8;
  heap_addr g G.rsi off_msg;
  G.addi g G.rsi 8;
  G.call g "memcpy";
  G.inc g G.r12;
  G.cmpi g G.r12 250;
  G.jne g "list_top";
  G.label g "list_done";
  G.mov g G.r13 G.r12;
  G.sys_marker g 3;
  G.xor g G.r12 G.r12;
  G.label g "file_top";
  G.cmp g G.r12 G.r13;
  G.jcc g Flags.AE "files_done";
  G.mov g G.rbx G.r12;
  G.shl g G.rbx 6;
  G.add g G.rbx G.rbp;
  G.addi g G.rbx off_names;
  G.ld g G.r14 ~base:G.rbx ();
  G.mov g G.rdi G.rbx;
  G.addi g G.rdi 12;
  G.call g "strlen";
  G.push g G.rax;
  heap_addr g G.rdi off_msg;
  G.lii g G.rdx op_file;
  G.stb g ~base:G.rdi ~disp:4 G.rdx ();
  G.stb g ~base:G.rdi ~disp:5 G.rax ();
  G.mov g G.rdx G.rax;
  G.addi g G.rdi 6;
  G.mov g G.rsi G.rbx;
  G.addi g G.rsi 12;
  G.call g "memcpy";
  G.pop g G.rax;
  heap_addr g G.rdi off_msg;
  G.mov g G.rdx G.rdi;
  G.add g G.rdx G.rax;
  G.st32 g ~base:G.rdx ~disp:6 G.r14 ();
  G.mov g G.rdx G.rax;
  G.addi g G.rdx 6;
  G.st32 g ~base:G.rdi G.rdx ();
  G.call g "send_frame";
  G.call g "read_reply";
  heap_addr g G.rsi off_msg;
  G.ld32 g G.r15 ~base:G.rsi ~disp:4 ();
  G.mov g G.rdx G.r15;
  G.shl g G.rdx 3;
  heap_addr g G.rdi off_csums;
  heap_addr g G.rsi off_msg;
  G.addi g G.rsi 8;
  G.call g "memcpy";
  G.mov g G.rdi G.rbx;
  G.addi g G.rdi 8;
  G.lii g G.rsi 0;
  G.syscall g Abi.sys_open;
  G.push g G.rax;
  G.mov g G.rdi G.rax;
  heap_addr g G.rsi off_fbuf;
  G.mov g G.rdx G.r14;
  G.call g "read_full";
  G.pop g G.rdi;
  G.syscall g Abi.sys_close;
  (* zero the LZ dictionary once per file (stale entries are verified) *)
  heap_addr g G.rdi off_tbl;
  G.lii g G.rsi 0;
  G.lii g G.rdx Lz.hash_table_size;
  G.call g "memset";
  G.xor g G.rbx G.rbx;
  G.label g "blk_top";
  G.mov g G.rax G.rbx;
  G.shl g G.rax 10;
  G.cmp g G.rax G.r14;
  G.jcc g Flags.AE "blk_done";
  G.mov g G.rdx G.r14;
  G.sub g G.rdx G.rax;
  G.cmpi g G.rdx block;
  G.jcc g Flags.BE "blen_ok";
  G.lii g G.rdx block;
  G.label g "blen_ok";
  G.push g G.rdx;
  heap_addr g G.rdi off_fbuf;
  G.add g G.rdi G.rax;
  G.mov g G.rsi G.rdx;
  G.call g "checksum";
  G.cmp g G.rbx G.r15;
  G.jcc g Flags.AE "must_send";
  G.mov g G.rdx G.rbx;
  G.shl g G.rdx 3;
  G.add g G.rdx G.rbp;
  G.ld g G.rdx ~base:G.rdx ~disp:off_csums ();
  G.cmp g G.rax G.rdx;
  G.jne g "must_send";
  G.pop g G.rdx;
  G.jmp g "blk_next";
  G.label g "must_send";
  G.pop g G.rdx;
  G.push g G.rdx;
  heap_addr g G.rdi off_fbuf;
  G.mov g G.rax G.rbx;
  G.shl g G.rax 10;
  G.add g G.rdi G.rax;
  G.mov g G.rsi G.rdx;
  heap_addr g G.rdx off_cbuf;
  heap_addr g G.rcx off_tbl;
  G.call g "lz_compress";
  G.push g G.rax;
  heap_addr g G.rdi off_msg;
  G.lii g G.rdx op_block;
  G.stb g ~base:G.rdi ~disp:4 G.rdx ();
  G.st32 g ~base:G.rdi ~disp:5 G.rbx ();
  G.ld g G.rdx ~base:G.rsp ~disp:8 ();
  G.st16 g ~base:G.rdi ~disp:9 G.rdx ();
  G.ld g G.rdx ~base:G.rsp ();
  G.st16 g ~base:G.rdi ~disp:11 G.rdx ();
  G.mov g G.rax G.rdx;
  G.addi g G.rax 9;
  G.st32 g ~base:G.rdi G.rax ();
  G.addi g G.rdi 13;
  heap_addr g G.rsi off_cbuf;
  G.call g "memcpy";
  G.call g "send_frame";
  G.pop g G.rax;
  G.pop g G.rax;
  G.label g "blk_next";
  G.inc g G.rbx;
  G.jmp g "blk_top";
  G.label g "blk_done";
  heap_addr g G.rdi off_msg;
  G.lii g G.rdx 1;
  G.st32 g ~base:G.rdi G.rdx ();
  G.lii g G.rdx op_filedone;
  G.stb g ~base:G.rdi ~disp:4 G.rdx ();
  G.call g "send_frame";
  G.inc g G.r12;
  G.jmp g "file_top";
  G.label g "files_done";
  G.sys_marker g 5;
  heap_addr g G.rdi off_msg;
  G.lii g G.rdx 1;
  G.st32 g ~base:G.rdi G.rdx ();
  G.lii g G.rdx op_quit;
  G.stb g ~base:G.rdi ~disp:4 G.rdx ();
  G.call g "send_frame";
  G.call g "read_reply";
  G.sys_marker g 6;
  G.lii g G.rdi client_out;
  G.syscall g Abi.sys_close;
  G.lii g G.rdi client_in;
  G.syscall g Abi.sys_close;
  G.sys_exit g 0;
  G.assemble g

(** All programs of the benchmark, ready for {!Ptl_kernel.Kernel}. *)
let programs () =
  [
    ("init", init_prog ());
    ("rsync_client", rsync_client_full ());
    ("ssh_client", ssh_client ());
    ("sshd", sshd ());
    ("rsync_server", rsync_server ());
  ]
