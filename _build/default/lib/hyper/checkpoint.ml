(** Domain checkpointing: capture and restore the machine state of a
    bare-metal (kernel-less) domain — physical memory, VCPU context and
    the virtual clock. This is the foundation of the interrupt/DMA
    trace-and-inject methodology of §4.2 ("a checkpoint of the target
    machine's physical memory and register state is captured ... the
    simulator then starts execution at the checkpoint").

    Full-system domains with a live minios instance carry host-side
    kernel bookkeeping (continuations) that is deliberately not
    checkpointable; the trace/inject experiments run on bare-machine
    workloads, like the paper's device-level replay. *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Pm = Ptl_mem.Phys_mem

type t = {
  mem_snapshot : Pm.t;
  ctx_snapshot : Context.t;
  cycle : int;
  tsc_offset : int64;
}

(** Capture the machine state. *)
let capture (env : Env.t) (ctx : Context.t) =
  {
    mem_snapshot = Pm.copy env.Env.mem;
    ctx_snapshot = Context.copy ctx;
    cycle = env.Env.cycle;
    tsc_offset = env.Env.tsc_offset;
  }

(** Restore the machine state in place: existing references to the
    environment and context remain valid, exactly like restarting a
    domain from a Xen checkpoint. *)
let restore t (env : Env.t) (ctx : Context.t) =
  Pm.restore env.Env.mem ~snapshot:t.mem_snapshot;
  Context.restore ctx ~snapshot:t.ctx_snapshot;
  env.Env.cycle <- t.cycle;
  env.Env.tsc_offset <- t.tsc_offset
