(** Native-mode co-simulation self-validation (paper §2.3): run the same
    image on the cycle-accurate core and the functional reference,
    compare architectural state at instruction-count checkpoints, and
    binary-search the first divergence when one exists. *)

type result =
  | Agree of int  (* instructions compared *)
  | Diverged of { after_insns : int; diffs : string list }

(** Compare every [check_every] instructions up to [max_insns]. *)
val validate :
  ?config:Ptl_ooo.Config.t ->
  ?check_every:int ->
  max_insns:int ->
  Ptl_isa.Asm.image ->
  result

(** Narrow the first divergent instruction between [lo] (agreeing) and
    [hi] (diverged). *)
val bisect : ?config:Ptl_ooo.Config.t -> Ptl_isa.Asm.image -> lo:int -> hi:int -> int
