(** PTLmon: the monitor that instantiates PTLsim inside a target domain.

    The paper's PTLmon "is responsible for booting PTLsim inside the
    target domain and coordinating its communication with the outside
    world" (§4): it reserves memory, loads the simulator core, and
    performs the contextswap hypercall. Here it assembles the pieces —
    environment, VCPU, minios kernel, workload programs and files — and
    returns a ready {!Domain}. *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Kernel = Ptl_kernel.Kernel
module Config = Ptl_ooo.Config

type spec = {
  programs : (string * Ptl_isa.Asm.image) list;  (* must include "init" *)
  files : (string * string) list;
  kernel_config : Kernel.config;
  machine_config : Config.t;
  core : string;  (* initial simulation core model *)
  snapshot_interval : int option;  (* statistics snapshots (cycles) *)
}

let default_spec =
  {
    programs = [];
    files = [];
    kernel_config = Kernel.default_config;
    machine_config = Config.k8_ptlsim;
    core = "ooo";
    snapshot_interval = None;
  }

(** Build and boot a full-system domain. The domain starts in native mode
    (the paper: "PTLsim always boots into simulation mode to perform
    initialization tasks, but immediately switches back to native mode to
    start the guest kernel's boot process"); the workload switches modes
    via ptlcall. *)
let launch ?stats (spec : spec) =
  let env = Env.create ?stats () in
  let ctx = Context.create ~vcpu_id:0 in
  let k = Kernel.create ~config:spec.kernel_config env ctx in
  List.iter (fun (name, contents) -> Kernel.add_file k ~name ~contents) spec.files;
  List.iter (fun (name, image) -> Kernel.register_program k ~name image) spec.programs;
  Kernel.boot k;
  let d =
    Domain.create ~kernel:k ~core:spec.core ~config:spec.machine_config env ctx
  in
  (match spec.snapshot_interval with
  | Some interval -> Domain.enable_timelapse d ~interval
  | None -> ());
  (d, k)
