(** Domain checkpointing (paper §4.2): capture and restore physical
    memory, VCPU context and the virtual clock of a bare-machine domain.
    Restores are in place, so existing references remain valid — like
    restarting a domain from a Xen checkpoint. *)

type t

val capture : Ptl_arch.Env.t -> Ptl_arch.Context.t -> t
val restore : t -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> unit
