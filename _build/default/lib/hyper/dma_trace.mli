(** Interrupt and DMA trace recording and injection (paper §4.2): record
    externally-generated events (timestamp, interrupt vector, DMA'd
    bytes) during one run, then replay them cycle-exactly against a
    restored checkpoint for deterministic, repeatable simulation of
    external bus traffic. *)

type event = {
  at_cycle : int;
  vector : int option;
  dma : (int * string) list;  (* (paddr, bytes) *)
}

type trace

val create : unit -> trace

(** Record an event at the current virtual time. *)
val record :
  trace -> Ptl_arch.Env.t -> ?vector:int -> ?dma:(int * string) list -> unit -> unit

val events : trace -> event list
val length : trace -> int

(** A replay cursor over a trace. *)
type injector

val injector : trace -> injector
val pending : injector -> int
val next_cycle : injector -> int option

(** Fire every event whose timestamp has been reached: perform its DMA
    writes and raise its interrupt. Cheap; call regularly. *)
val pump : injector -> Ptl_arch.Env.t -> Ptl_arch.Context.t -> unit
