(** Interrupt and DMA trace recording and injection (§4.2).

    "The event records (comprising a timestamp, interrupt type, any memory
    overwritten by the DMA transaction ...) are written to a trace file.
    The simulator then starts execution at the checkpoint, and reads the
    interrupt and DMA trace file as if it were a queue: the event at the
    head of the queue is injected into the simulated processor if and when
    the simulation reaches the cycle number the event was timestamped
    with." This yields deterministic, infinitely repeatable simulation of
    external bus traffic — the methodology of Intel's internal P4 tools
    the paper cites.

    Records carry the virtual cycle, the interrupt vector, and the bytes a
    DMA wrote (address + payload), so replay reproduces both the timing
    and the memory effects. *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Pm = Ptl_mem.Phys_mem

type event = {
  at_cycle : int;
  vector : int option;  (* interrupt to raise, if any *)
  dma : (int * string) list;  (* (paddr, bytes) written before the irq *)
}

type trace = { mutable events : event list (* newest first while recording *) }

let create () = { events = [] }

(** Record an external event at the current virtual time. *)
let record trace (env : Env.t) ?vector ?(dma = []) () =
  trace.events <- { at_cycle = env.Env.cycle; vector; dma } :: trace.events

let events trace = List.rev trace.events

let length trace = List.length trace.events

(** An injector replays a trace against a running domain: call [pump]
    regularly (it is cheap); due events perform their DMA writes and
    raise their interrupts at exactly the recorded cycles. *)
type injector = { mutable queue : event list }

let injector trace = { queue = events trace }

let pending inj = List.length inj.queue

(** Next event's cycle, or None when drained. *)
let next_cycle inj =
  match inj.queue with [] -> None | e :: _ -> Some e.at_cycle

let pump inj (env : Env.t) (ctx : Context.t) =
  let rec go () =
    match inj.queue with
    | e :: rest when e.at_cycle <= env.Env.cycle ->
      inj.queue <- rest;
      List.iter (fun (paddr, bytes) -> Pm.write_string env.Env.mem paddr bytes) e.dma;
      (match e.vector with Some v -> Context.raise_irq ctx v | None -> ());
      go ()
    | _ -> ()
  in
  go ()
