lib/hyper/cosim.ml: Ptl_arch Ptl_ooo
