lib/hyper/checkpoint.mli: Ptl_arch
