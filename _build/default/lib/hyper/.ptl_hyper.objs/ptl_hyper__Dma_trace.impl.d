lib/hyper/dma_trace.ml: List Ptl_arch Ptl_mem
