lib/hyper/ptlcall.ml: Int64 List Printf String
