lib/hyper/checkpoint.ml: Ptl_arch Ptl_mem
