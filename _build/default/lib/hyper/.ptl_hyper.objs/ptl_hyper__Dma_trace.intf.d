lib/hyper/dma_trace.mli: Ptl_arch
