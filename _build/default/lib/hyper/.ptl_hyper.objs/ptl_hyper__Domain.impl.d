lib/hyper/domain.ml: Int64 List Logs Ptl_arch Ptl_isa Ptl_kernel Ptl_ooo Ptl_stats Ptlcall
