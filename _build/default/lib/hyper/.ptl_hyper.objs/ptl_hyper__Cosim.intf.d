lib/hyper/cosim.mli: Ptl_isa Ptl_ooo
