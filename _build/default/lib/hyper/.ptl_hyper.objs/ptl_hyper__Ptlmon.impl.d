lib/hyper/ptlmon.ml: Domain List Ptl_arch Ptl_isa Ptl_kernel Ptl_ooo
