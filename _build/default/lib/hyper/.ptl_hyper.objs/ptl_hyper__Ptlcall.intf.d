lib/hyper/ptlcall.mli:
