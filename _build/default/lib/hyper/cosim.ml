(** Native-mode co-simulation self-validation (§2.3).

    "It is possible, on an instruction by instruction basis, to determine
    where the architectural state produced by PTLsim's model begins to
    diverge from the state produced by the native x86 host processor ...
    Using binary search techniques, the problem can be rapidly isolated."

    Here the functional core plays the reference processor: the same
    image runs on both engines, comparing architectural state every
    [check_every] committed instructions, and [bisect] narrows the first
    divergent instruction when one exists. *)

module Machine = Ptl_arch.Machine
module Context = Ptl_arch.Context
module Seqcore = Ptl_arch.Seqcore
module Ooo = Ptl_ooo.Ooo_core
module Config = Ptl_ooo.Config

type result =
  | Agree of int  (* instructions compared *)
  | Diverged of { after_insns : int; diffs : string list }

(* Run [image] on the functional core for exactly [n] committed
   instructions (single-instruction blocks for exact stepping). *)
let run_reference image ~n =
  let m = Machine.create image in
  let seq = Seqcore.create ~max_bb_insns:1 m.Machine.env m.Machine.ctx in
  let rec go () =
    if m.Machine.ctx.Context.insns_committed < n && m.Machine.ctx.Context.running
    then begin
      (match Seqcore.step_block seq with
      | Seqcore.Executed 0 | Seqcore.Idle -> ()
      | Seqcore.Executed _ | Seqcore.Interrupted -> go ())
    end
  in
  go ();
  m

(* Run [image] on the OOO core for at least [n] committed instructions. *)
let run_model ?(config = Config.tiny) image ~n =
  let m = Machine.create image in
  let core = Ooo.create config m.Machine.env [| m.Machine.ctx |] in
  let budget = ref 50_000_000 in
  while
    m.Machine.ctx.Context.insns_committed < n
    && (not (Ooo.all_idle core))
    && !budget > 0
  do
    Ooo.step core;
    m.Machine.env.Ptl_arch.Env.cycle <- m.Machine.env.Ptl_arch.Env.cycle + 1;
    decr budget
  done;
  m

(** Compare the model against the reference every [check_every]
    instructions, up to [max_insns]. The model may overrun a checkpoint by
    a few commits within one cycle, so the reference is aligned to the
    model's actual committed count before comparing. *)
let validate ?config ?(check_every = 50) ~max_insns image =
  let rec go n =
    if n > max_insns then Agree max_insns
    else begin
      let model_m = run_model ?config image ~n in
      let actual = model_m.Machine.ctx.Context.insns_committed in
      let ref_m = run_reference image ~n:actual in
      let diffs = Context.diff ref_m.Machine.ctx model_m.Machine.ctx in
      if diffs <> [] then Diverged { after_insns = actual; diffs }
      else if actual < n (* program finished early: fully compared *)
      then Agree actual
      else go (n + check_every)
    end
  in
  go check_every

(** Binary-search the first divergent instruction between [lo] (known
    agreeing) and [hi] (known diverged) — the paper's isolation
    technique. *)
let bisect ?config image ~lo ~hi =
  let rec go lo hi =
    if hi - lo <= 1 then hi
    else begin
      let mid = (lo + hi) / 2 in
      let model_m = run_model ?config image ~n:mid in
      let actual = model_m.Machine.ctx.Context.insns_committed in
      let ref_m = run_reference image ~n:actual in
      if Context.diff ref_m.Machine.ctx model_m.Machine.ctx = [] then go mid hi
      else go lo mid
    end
  in
  go lo hi
