(** The internal micro-operation (uop) instruction set.

    Every x86lite instruction is translated into one or more uops, "similar
    to classical load-store RISC instructions" but carrying the x86-specific
    baggage the paper calls out (§2.1): per-uop operand sizes, condition
    flag subsets, unaligned loads/stores, locked memory operations, and
    SOM/EOM markers so the commit unit can enforce the atomicity of each
    x86 instruction (all uops of an instruction commit, or none do).

    The uop register space extends the 16 architectural GPRs with
    translator temporaries, the flags register, a zero register, the SSE
    registers and the x87-lite accumulator; the register alias table in the
    out-of-order core renames this entire space. *)

open Ptl_util

(* ---- uop-level architectural register numbering ---- *)

let reg_gpr_base = 0 (* 0..15: rax..r15 *)
let reg_temp_base = 16 (* 16..23: translator temporaries t0..t7 *)
let reg_flags = 24
let reg_zero = 25
let reg_xmm_base = 26 (* 26..41: xmm0..xmm15 *)
let reg_st0 = 42 (* x87-lite accumulator *)
let num_arch_regs = 43
let reg_none = -1

let temp n =
  if n < 0 || n > 7 then invalid_arg "Uop.temp";
  reg_temp_base + n

let xmm n =
  if n < 0 || n > 15 then invalid_arg "Uop.xmm";
  reg_xmm_base + n

let reg_name r =
  if r = reg_none then "-"
  else if r < 16 then Ptl_isa.Regs.gpr_name r
  else if r < 24 then Printf.sprintf "t%d" (r - reg_temp_base)
  else if r = reg_flags then "flags"
  else if r = reg_zero then "zero"
  else if r < 42 then Printf.sprintf "xmm%d" (r - reg_xmm_base)
  else if r = reg_st0 then "st0"
  else Printf.sprintf "r?%d" r

(* ---- microcode assists ---- *)

(** Operations too complex (or too privileged) for the datapath: executed
    atomically at commit by context microcode, serializing the pipeline. *)
type assist =
  | A_syscall
  | A_sysret
  | A_int of int
  | A_iret
  | A_cpuid
  | A_rdtsc
  | A_rdpmc
  | A_hlt
  | A_cli
  | A_sti
  | A_pushf
  | A_popf
  | A_mov_to_cr of int
  | A_mov_from_cr of int
  | A_invlpg
  | A_ptlcall
  | A_kcall
  | A_pause

let assist_name = function
  | A_syscall -> "syscall"
  | A_sysret -> "sysret"
  | A_int n -> Printf.sprintf "int%#x" n
  | A_iret -> "iret"
  | A_cpuid -> "cpuid"
  | A_rdtsc -> "rdtsc"
  | A_rdpmc -> "rdpmc"
  | A_hlt -> "hlt"
  | A_cli -> "cli"
  | A_sti -> "sti"
  | A_pushf -> "pushf"
  | A_popf -> "popf"
  | A_mov_to_cr n -> Printf.sprintf "mov_to_cr%d" n
  | A_mov_from_cr n -> Printf.sprintf "mov_from_cr%d" n
  | A_invlpg -> "invlpg"
  | A_ptlcall -> "ptlcall"
  | A_kcall -> "kcall"
  | A_pause -> "pause"

(* ---- opcodes ---- *)

type opcode =
  (* rd <- ra (or imm when ra = reg_none) *)
  | Mov
  (* rd <- ra op rb/imm, integer ALU *)
  | Add
  | Adc
  | Sub
  | Sbb
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Sar
  | Rol
  | Ror
  | Mull (* low 64 bits of product *)
  | Mulhu (* high 64 bits, unsigned *)
  | Mulhs (* high 64 bits, signed *)
  | Divqu (* (ra:rb) / rc unsigned — ra=hi, rb=lo, rc=divisor *)
  | Remqu
  | Divqs
  | Remqs
  | Neg
  | Not
  (* rd <- zero/sign extension of low [mem_size] bytes of ra *)
  | Zext
  | Sext
  (* rd <- ra + rb*scale + imm, no flags (address arithmetic) *)
  | Lea
  (* rd <- cond ? ra : rb *)
  | Sel of Ptl_isa.Flags.cond
  (* rd <- cond ? 1 : 0 *)
  | Setc of Ptl_isa.Flags.cond
  (* bit tests: CF <- bit; Bts/Btr/Btc also produce the updated word *)
  | Bt
  | Bts
  | Btr
  | Btc
  (* memory: address = ra + rb*scale + imm; St data in rc *)
  | Ld
  | St
  | Ldl (* locked load (acquires interlock) *)
  | Strel (* store releasing the interlock *)
  | Fence
  (* branches: Bru/Brc to [br_target]; Jmpr to value of ra (+ load for
     memory-indirect, done by a preceding Ld); Brnz taken when ra <> 0 *)
  | Bru
  | Brc of Ptl_isa.Flags.cond
  | Brnz
  | Brz
  | Jmpr
  (* floating point on IEEE double bit patterns *)
  | Fadd
  | Fsub
  | Fmul
  | Fdiv
  | Fmov
  | I2f
  | F2i
  | Fcmp (* sets ZF/PF/CF like comisd *)
  (* microcode escape *)
  | Assist of assist
  | Nop

let opcode_name = function
  | Mov -> "mov" | Add -> "add" | Adc -> "adc" | Sub -> "sub" | Sbb -> "sbb"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Sar -> "sar" | Rol -> "rol" | Ror -> "ror" | Mull -> "mull"
  | Mulhu -> "mulhu" | Mulhs -> "mulhs" | Divqu -> "divqu" | Remqu -> "remqu"
  | Divqs -> "divqs" | Remqs -> "remqs" | Neg -> "neg" | Not -> "not"
  | Zext -> "zext" | Sext -> "sext" | Lea -> "lea"
  | Sel c -> "sel." ^ Ptl_isa.Flags.cond_name c
  | Setc c -> "set." ^ Ptl_isa.Flags.cond_name c
  | Bt -> "bt" | Bts -> "bts" | Btr -> "btr" | Btc -> "btc"
  | Ld -> "ld" | St -> "st" | Ldl -> "ld.l" | Strel -> "st.rel"
  | Fence -> "fence" | Bru -> "bru" | Brc c -> "br." ^ Ptl_isa.Flags.cond_name c
  | Brnz -> "brnz" | Brz -> "brz" | Jmpr -> "jmpr" | Fadd -> "fadd" | Fsub -> "fsub"
  | Fmul -> "fmul" | Fdiv -> "fdiv" | Fmov -> "fmov" | I2f -> "i2f"
  | F2i -> "f2i" | Fcmp -> "fcmp" | Assist a -> "assist." ^ assist_name a
  | Nop -> "nop"

(* ---- the uop record ---- *)

type t = {
  op : opcode;
  size : W64.size;  (* ALU operation width *)
  rd : int;  (* destination arch reg, or reg_none *)
  ra : int;  (* source A (also memory base), or reg_none *)
  rb : int;  (* source B (also memory index), or reg_none *)
  rc : int;  (* source C (store data, third div operand), or reg_none *)
  imm : int64;  (* immediate operand / memory displacement *)
  scale : int;  (* memory index scale *)
  mem_size : W64.size;  (* load/store width; Zext/Sext source width *)
  setflags : int;  (* mask of condition-flag bits this uop produces *)
  readflags : bool;  (* consumes the flags register *)
  unaligned : bool;  (* memory access may straddle; checked at issue *)
  som : bool;  (* first uop of its x86 instruction *)
  eom : bool;  (* last uop of its x86 instruction *)
  hint_call : bool;  (* branch is a call (push return address stack) *)
  hint_ret : bool;  (* branch is a return (pop return address stack) *)
  rip : int64;  (* address of the parent x86 instruction *)
  next_rip : int64;  (* fall-through address *)
  br_target : int64;  (* taken target for Bru/Brc/Brnz *)
}

let default =
  {
    op = Nop;
    size = W64.B8;
    rd = reg_none;
    ra = reg_none;
    rb = reg_none;
    rc = reg_none;
    imm = 0L;
    scale = 1;
    mem_size = W64.B8;
    setflags = 0;
    readflags = false;
    unaligned = false;
    som = false;
    eom = false;
    hint_call = false;
    hint_ret = false;
    rip = 0L;
    next_rip = 0L;
    br_target = 0L;
  }

let is_load u = match u.op with Ld | Ldl -> true | _ -> false
let is_store u = match u.op with St | Strel -> true | _ -> false
let is_mem u = is_load u || is_store u

let is_branch u =
  match u.op with Bru | Brc _ | Brnz | Brz | Jmpr -> true | _ -> false

let is_assist u = match u.op with Assist _ -> true | _ -> false

(** Whether this uop ends a basic block (branch or serializing assist). *)
let ends_block u = is_branch u || is_assist u

let to_string u =
  let buf = Buffer.create 48 in
  Buffer.add_string buf (opcode_name u.op);
  Buffer.add_string buf (Printf.sprintf ".%s" (W64.size_to_string u.size));
  if u.rd <> reg_none then Buffer.add_string buf (" " ^ reg_name u.rd ^ " <-");
  if u.ra <> reg_none then Buffer.add_string buf (" " ^ reg_name u.ra);
  if u.rb <> reg_none then
    Buffer.add_string buf
      (Printf.sprintf " %s%s" (reg_name u.rb)
         (if u.scale <> 1 then Printf.sprintf "*%d" u.scale else ""));
  if u.rc <> reg_none then Buffer.add_string buf (" " ^ reg_name u.rc);
  if u.imm <> 0L || (u.ra = reg_none && u.rb = reg_none) then
    Buffer.add_string buf (Printf.sprintf " $%Ld" u.imm);
  if is_branch u then Buffer.add_string buf (Printf.sprintf " -> %#Lx" u.br_target);
  if u.som then Buffer.add_string buf " [som]";
  if u.eom then Buffer.add_string buf " [eom]";
  Buffer.contents buf
