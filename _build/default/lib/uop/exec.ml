(** Pure execution semantics of every uop.

    This single function is shared by the sequential functional core and
    the out-of-order core's ALUs, which is what makes PTLsim an
    *integrated* simulator (paper §6.1): there is exactly one definition of
    what each uop computes, so the timing model can never silently compute
    different values than the functional model.

    The executor is pure: it receives the uop and its source register
    values plus the incoming flags, and returns the result value, outgoing
    flags and branch resolution. Memory uops only compute their effective
    address here; the owning core performs the actual access (after TLB
    lookup and store-queue search). *)

open Ptl_util
module Flags = Ptl_isa.Flags

(** Arithmetic faults detected at execution (divide error = x86 #DE). *)
exception Divide_error

type outcome = {
  value : int64;  (* result for rd; effective address for Ld/St *)
  flags : int;  (* outgoing flags word *)
  taken : bool;  (* branch outcome *)
  target : int64;  (* resolved next RIP for branches *)
}

let no_branch value flags = { value; flags; taken = false; target = 0L }

(* x86 partial-register write semantics: byte and word results merge into
   the old 64-bit destination; dword results zero-extend; qword results
   replace. [old] is the previous destination value. *)
let merge_result size ~old v =
  match size with
  | W64.B8 -> v
  | W64.B4 -> W64.truncate W64.B4 v
  | W64.B1 | W64.B2 ->
    let m = W64.mask_of_size size in
    Int64.logor (Int64.logand old (Int64.lognot m)) (Int64.logand v m)

(* Flags produced by an add/sub style result. *)
let arith_flags size ~result ~carry ~overflow old_flags =
  old_flags |> Flags.set_cf carry |> Flags.set_of overflow
  |> Flags.of_result size result

let logic_flags size ~result old_flags =
  old_flags |> Flags.set_cf false |> Flags.set_of false
  |> Flags.of_result size result

(* Apply the uop's setflags mask: only the bits in the mask change. *)
let apply_flag_mask ~mask ~old ~computed =
  old land lnot mask lor (computed land mask)

(* 128/64 unsigned division of (hi:lo) by d. Raises on overflow or /0,
   like the x86 #DE fault. Bit-serial restoring division. *)
let udiv128 ~hi ~lo ~d =
  if d = 0L then raise Divide_error;
  if W64.ucompare hi d >= 0 then raise Divide_error (* quotient > 64 bits *);
  let rem = ref hi and quo = ref 0L in
  for i = 63 downto 0 do
    (* rem = rem*2 + bit i of lo; detect carry out of bit 63 *)
    let msb = Int64.logand !rem Int64.min_int <> 0L in
    rem := Int64.logor (Int64.shift_left !rem 1) (Int64.logand (Int64.shift_right_logical lo i) 1L);
    if msb || W64.ucompare !rem d >= 0 then begin
      rem := Int64.sub !rem d;
      quo := Int64.logor !quo (Int64.shift_left 1L i)
    end
  done;
  (!quo, !rem)

(* Signed 128/64 division; hi:lo is a signed 128-bit value. *)
let sdiv128 ~hi ~lo ~d =
  if d = 0L then raise Divide_error;
  let neg_dividend = hi < 0L in
  let hi, lo =
    if neg_dividend then
      (* negate the 128-bit value *)
      let lo' = Int64.neg lo in
      let hi' = Int64.lognot hi in
      let hi' = if lo = 0L then Int64.add hi' 1L else hi' in
      (hi', lo')
    else (hi, lo)
  in
  let neg_divisor = d < 0L in
  let d_abs = if neg_divisor then Int64.neg d else d in
  let q, r = udiv128 ~hi ~lo ~d:d_abs in
  let q = if neg_dividend <> neg_divisor then Int64.neg q else q in
  let r = if neg_dividend then Int64.neg r else r in
  (* overflow check: quotient must fit in signed 64 bits *)
  if neg_dividend <> neg_divisor then begin
    if q > 0L then raise Divide_error
  end
  else if q < 0L then raise Divide_error;
  (q, r)

let f64 bits = Int64.float_of_bits bits
let bits64 f = Int64.bits_of_float f

(* comisd flag semantics: unordered => ZF,PF,CF; a>b => none; a<b => CF;
   a=b => ZF. OF/SF cleared. *)
let fcmp_flags a b old_flags =
  let fa = f64 a and fb = f64 b in
  let zf, pf, cf =
    if Float.is_nan fa || Float.is_nan fb then (true, true, true)
    else if fa > fb then (false, false, false)
    else if fa < fb then (false, false, true)
    else (true, false, false)
  in
  old_flags |> Flags.set_zf zf |> Flags.set_pf pf |> Flags.set_cf cf
  |> Flags.set_sf false |> Flags.set_of false

(** Effective address of a memory uop given its sources. *)
let effective_address (u : Uop.t) ~ra ~rb =
  let base = if u.ra = Uop.reg_none then 0L else ra in
  let index = if u.rb = Uop.reg_none then 0L else rb in
  Int64.add base (Int64.add (Int64.mul index (Int64.of_int u.scale)) u.imm)

(** Execute [u] with source values [ra], [rb], [rc] and incoming [flags].
    For Ld/Ldl the [value] is the effective address (the core completes the
    load and calls {!finish_load}); for St/Strel it is also the address
    (store data is [rc]). Raises [Divide_error] for division faults. *)
let execute (u : Uop.t) ~ra ~rb ~rc ~flags : outcome =
  let size = u.size in
  (* Second operand: rb, or the immediate when rb is absent. *)
  let b = if u.rb = Uop.reg_none then u.imm else rb in
  let finish_arith ?(merge_old = ra) (r, c, o) =
    let computed = arith_flags size ~result:r ~carry:c ~overflow:o flags in
    no_branch (merge_result size ~old:merge_old r)
      (apply_flag_mask ~mask:u.setflags ~old:flags ~computed)
  in
  let finish_logic ?(merge_old = ra) r =
    let computed = logic_flags size ~result:r flags in
    no_branch (merge_result size ~old:merge_old r)
      (apply_flag_mask ~mask:u.setflags ~old:flags ~computed)
  in
  let finish_shift ?(merge_old = ra) (r, carry, ovf) =
    match carry with
    | None -> no_branch (merge_result size ~old:merge_old r) flags (* count = 0 *)
    | Some cf ->
      let computed =
        flags |> Flags.set_cf cf
        |> (fun f -> match ovf with Some o -> Flags.set_of o f | None -> f)
        |> Flags.of_result size r
      in
      no_branch (merge_result size ~old:merge_old r)
        (apply_flag_mask ~mask:u.setflags ~old:flags ~computed)
  in
  match u.op with
  | Uop.Nop | Uop.Fence | Uop.Assist _ -> no_branch 0L flags
  | Uop.Mov ->
    (* rd <- rb/imm, merged into ra (the old destination) at narrow sizes *)
    no_branch (merge_result size ~old:ra b) flags
  | Uop.Add -> finish_arith (W64.add_carry size ra b false)
  | Uop.Adc -> finish_arith (W64.add_carry size ra b (Flags.cf flags))
  | Uop.Sub -> finish_arith (W64.sub_borrow size ra b false)
  | Uop.Sbb -> finish_arith (W64.sub_borrow size ra b (Flags.cf flags))
  | Uop.And -> finish_logic (Int64.logand (W64.truncate size ra) (W64.truncate size b))
  | Uop.Or -> finish_logic (Int64.logor (W64.truncate size ra) (W64.truncate size b))
  | Uop.Xor -> finish_logic (Int64.logxor (W64.truncate size ra) (W64.truncate size b))
  | Uop.Shl -> finish_shift (W64.shl size ra (Int64.to_int (Int64.logand b 0xFFL)))
  | Uop.Shr -> finish_shift (W64.shr size ra (Int64.to_int (Int64.logand b 0xFFL)))
  | Uop.Sar -> finish_shift (W64.sar size ra (Int64.to_int (Int64.logand b 0xFFL)))
  | Uop.Rol -> finish_shift (W64.rol size ra (Int64.to_int (Int64.logand b 0xFFL)))
  | Uop.Ror -> finish_shift (W64.ror size ra (Int64.to_int (Int64.logand b 0xFFL)))
  | Uop.Neg ->
    let r, c, o = W64.sub_borrow size 0L ra false in
    finish_arith ~merge_old:ra (r, c, o)
  | Uop.Not ->
    (* not sets no flags on x86 *)
    no_branch (merge_result size ~old:ra (Int64.lognot ra)) flags
  | Uop.Mull ->
    let a = W64.sign_extend size ra and bv = W64.sign_extend size b in
    (* CF=OF set when the product does not fit the signed operand width *)
    let r, hi_sig =
      if size = W64.B8 then begin
        let lo, hi = W64.smul128 a bv in
        (lo, hi <> Int64.shift_right lo 63)
      end
      else begin
        let full = Int64.mul a bv in
        let r = W64.truncate size full in
        (r, W64.sign_extend size r <> full)
      end
    in
    let computed =
      flags |> Flags.set_cf hi_sig |> Flags.set_of hi_sig |> Flags.of_result size r
    in
    no_branch (merge_result size ~old:ra r)
      (apply_flag_mask ~mask:u.setflags ~old:flags ~computed)
  | Uop.Mulhu ->
    let a = W64.truncate size ra and bv = W64.truncate size b in
    if size = W64.B8 then
      let _, hi = W64.umul128 a bv in
      no_branch hi flags
    else
      let full = Int64.mul a bv in
      no_branch (Int64.shift_right_logical full (W64.bits_of_size size)) flags
  | Uop.Mulhs ->
    let a = W64.sign_extend size ra and bv = W64.sign_extend size b in
    if size = W64.B8 then
      let _, hi = W64.smul128 a bv in
      no_branch hi flags
    else
      let full = Int64.mul a bv in
      no_branch (W64.truncate size (Int64.shift_right full (W64.bits_of_size size))) flags
  | Uop.Divqu | Uop.Remqu ->
    (* ra = hi, rb = lo, rc = divisor; narrow sizes use plain 64-bit math *)
    let d = W64.truncate size rc in
    if size = W64.B8 then begin
      let q, r = udiv128 ~hi:ra ~lo:rb ~d in
      no_branch (if u.op = Uop.Divqu then q else r) flags
    end
    else begin
      if d = 0L then raise Divide_error;
      let dividend =
        Int64.logor
          (Int64.shift_left (W64.truncate size ra) (W64.bits_of_size size))
          (W64.truncate size rb)
      in
      let q = Int64.unsigned_div dividend d and r = Int64.unsigned_rem dividend d in
      if W64.ucompare q (W64.mask_of_size size) > 0 then raise Divide_error;
      no_branch (W64.truncate size (if u.op = Uop.Divqu then q else r)) flags
    end
  | Uop.Divqs | Uop.Remqs ->
    let d = W64.sign_extend size rc in
    if size = W64.B8 then begin
      let q, r = sdiv128 ~hi:ra ~lo:rb ~d in
      no_branch (if u.op = Uop.Divqs then q else r) flags
    end
    else begin
      if d = 0L then raise Divide_error;
      let bits = W64.bits_of_size size in
      let dividend =
        Int64.logor (Int64.shift_left (W64.truncate size ra) bits) (W64.truncate size rb)
      in
      let dividend = W64.sign_extend (W64.size_of_bytes (2 * W64.bytes_of_size size)) dividend in
      let q = Int64.div dividend d and r = Int64.rem dividend d in
      let half = Int64.shift_left 1L (bits - 1) in
      if q >= half || q < Int64.neg half then raise Divide_error;
      no_branch (W64.truncate size (if u.op = Uop.Divqs then q else r)) flags
    end
  | Uop.Zext -> no_branch (W64.truncate u.mem_size ra) flags
  | Uop.Sext -> no_branch (W64.sign_extend u.mem_size ra) flags
  | Uop.Lea -> no_branch (effective_address u ~ra ~rb) flags
  | Uop.Sel c ->
    let chosen = if Flags.eval c flags then ra else rb in
    (* merge base is the old destination = rb (the not-taken value) *)
    no_branch (merge_result size ~old:rb chosen) flags
  | Uop.Setc c ->
    let v = if Flags.eval c flags then 1L else 0L in
    no_branch (merge_result size ~old:ra v) flags
  | Uop.Bt | Uop.Bts | Uop.Btr | Uop.Btc ->
    let width = W64.bits_of_size size in
    let bit = Int64.to_int (Int64.unsigned_rem b (Int64.of_int width)) in
    let mask = Int64.shift_left 1L bit in
    let cf = Int64.logand ra mask <> 0L in
    let v =
      match u.op with
      | Uop.Bt -> ra
      | Uop.Bts -> Int64.logor ra mask
      | Uop.Btr -> Int64.logand ra (Int64.lognot mask)
      | Uop.Btc -> Int64.logxor ra mask
      | _ -> assert false
    in
    let computed = Flags.set_cf cf flags in
    no_branch (merge_result size ~old:ra v)
      (apply_flag_mask ~mask:u.setflags ~old:flags ~computed)
  | Uop.Ld | Uop.Ldl | Uop.St | Uop.Strel ->
    no_branch (effective_address u ~ra ~rb) flags
  | Uop.Bru -> { value = 0L; flags; taken = true; target = u.br_target }
  | Uop.Brc c ->
    let taken = Flags.eval c flags in
    { value = 0L; flags; taken; target = (if taken then u.br_target else u.next_rip) }
  | Uop.Brnz ->
    let taken = not (W64.is_zero size ra) in
    { value = 0L; flags; taken; target = (if taken then u.br_target else u.next_rip) }
  | Uop.Brz ->
    let taken = W64.is_zero size ra in
    { value = 0L; flags; taken; target = (if taken then u.br_target else u.next_rip) }
  | Uop.Jmpr -> { value = 0L; flags; taken = true; target = ra }
  | Uop.Fadd -> no_branch (bits64 (f64 ra +. f64 b)) flags
  | Uop.Fsub -> no_branch (bits64 (f64 ra -. f64 b)) flags
  | Uop.Fmul -> no_branch (bits64 (f64 ra *. f64 b)) flags
  | Uop.Fdiv -> no_branch (bits64 (f64 ra /. f64 b)) flags
  | Uop.Fmov -> no_branch b flags
  | Uop.I2f -> no_branch (bits64 (Int64.to_float ra)) flags
  | Uop.F2i ->
    let f = f64 ra in
    let v =
      if Float.is_nan f || f >= 9.22337203685477581e18 || f <= -9.22337203685477581e18
      then Int64.min_int (* x86 integer-indefinite *)
      else Int64.of_float f
    in
    no_branch v flags
  | Uop.Fcmp -> no_branch 0L (fcmp_flags ra rb flags)

(** Extend a raw loaded value per the load's width (loads zero-extend into
    temporaries; narrow merges are separate Mov uops). *)
let finish_load (u : Uop.t) raw = W64.truncate u.mem_size raw

(** Store data: the low [mem_size] bytes of [rc]'s value. *)
let store_data (u : Uop.t) rc = W64.truncate u.mem_size rc
