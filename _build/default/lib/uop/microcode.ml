(** The x86lite-to-uop translator ("microcode").

    Each architectural instruction becomes 1..8 uops bracketed by SOM/EOM
    markers. Load-and-compute and load-compute-store forms expand into
    ld / op / st sequences; LOCK-prefixed read-modify-writes use the locked
    load (ld.l) and releasing store (st.rel) uops that drive the interlock
    controller (paper §4.4); REP string instructions expand into a uop-level
    loop whose back-edge re-enters the same instruction, making every
    iteration an interruptible macro-op boundary; privileged and complex
    operations become serializing microcode assists. *)

open Ptl_util
module Insn = Ptl_isa.Insn
module Flags = Ptl_isa.Flags

(** Raised for instruction forms the microcode declines to implement
    (cores convert this into the #UD exception). Currently only 8-bit
    divide, which no modern compiler emits. *)
exception Unimplemented of string

let cc = Flags.cc_mask
let cc_no_cf = Flags.cc_mask land lnot Flags.cf_mask

type builder = { mutable acc : Uop.t list; base : Uop.t }

let make_builder ~rip ~next_rip =
  { acc = []; base = { Uop.default with rip; next_rip } }

let push b u = b.acc <- u :: b.acc

let finish b =
  match List.rev b.acc with
  | [] -> invalid_arg "Microcode: empty translation"
  | first :: rest ->
    let uops = Array.of_list ({ first with Uop.som = true } :: rest) in
    let last = Array.length uops - 1 in
    uops.(last) <- { uops.(last) with Uop.eom = true };
    uops

(* Memory operand fields onto a uop template. *)
let with_mem (u : Uop.t) (m : Insn.mem) =
  {
    u with
    Uop.ra = (match m.Insn.base with Some r -> r | None -> Uop.reg_none);
    rb = (match m.Insn.index with Some r -> r | None -> Uop.reg_none);
    scale = m.Insn.scale;
    imm = m.Insn.disp;
  }

let load_op ~locked = if locked then Uop.Ldl else Uop.Ld
let store_op ~locked = if locked then Uop.Strel else Uop.St

(* Emit a load of [m] into [dst] (zero-extended full-width temp). *)
let emit_load b ?(locked = false) ~size m ~dst =
  push b
    { (with_mem b.base m) with Uop.op = load_op ~locked; rd = dst; mem_size = size;
      unaligned = true }

(* Emit a store of register [data] to [m]. *)
let emit_store b ?(locked = false) ~size m ~data =
  push b
    { (with_mem b.base m) with Uop.op = store_op ~locked; rc = data; mem_size = size;
      unaligned = true }

(* Obtain the value of an rm operand: returns the register holding it,
   loading memory operands into [tmp]. *)
let rm_value b ~size ~tmp (rm : Insn.rm) =
  match rm with
  | Insn.Reg r -> r
  | Insn.Mem m ->
    emit_load b ~size m ~dst:tmp;
    tmp

(* ALU uop: rd = ra op (rb|imm). *)
let alu b op ~size ~rd ~ra ?(rb = Uop.reg_none) ?(imm = 0L) ?(setflags = 0)
    ?(readflags = false) () =
  push b { b.base with Uop.op; size; rd; ra; rb; imm; setflags; readflags }

let uop_of_alu = function
  | Insn.Add -> Uop.Add
  | Insn.Or -> Uop.Or
  | Insn.Adc -> Uop.Adc
  | Insn.Sbb -> Uop.Sbb
  | Insn.And -> Uop.And
  | Insn.Sub -> Uop.Sub
  | Insn.Xor -> Uop.Xor
  | Insn.Cmp -> Uop.Sub

let uop_of_shift = function
  | Insn.Shl -> Uop.Shl
  | Insn.Shr -> Uop.Shr
  | Insn.Sar -> Uop.Sar
  | Insn.Rol -> Uop.Rol
  | Insn.Ror -> Uop.Ror

let uop_of_bittest = function
  | Insn.Bt -> Uop.Bt
  | Insn.Bts -> Uop.Bts
  | Insn.Btr -> Uop.Btr
  | Insn.Btc -> Uop.Btc

let uop_of_fp = function
  | Insn.Fadd -> Uop.Fadd
  | Insn.Fsub -> Uop.Fsub
  | Insn.Fmul -> Uop.Fmul
  | Insn.Fdiv -> Uop.Fdiv

let uop_of_sse = function
  | Insn.Addsd -> Uop.Fadd
  | Insn.Subsd -> Uop.Fsub
  | Insn.Mulsd -> Uop.Fmul
  | Insn.Divsd -> Uop.Fdiv

let t0 = Uop.temp 0
let t1 = Uop.temp 1
let t2 = Uop.temp 2

let rsp = Ptl_isa.Regs.rsp
let rax = Ptl_isa.Regs.rax
let rcx = Ptl_isa.Regs.rcx
let rdx = Ptl_isa.Regs.rdx
let rsi = Ptl_isa.Regs.rsi
let rdi = Ptl_isa.Regs.rdi

(* Source operand of a two-operand instruction: register, immediate, or a
   freshly loaded temp. *)
let src_operand b ~size (src : Insn.src) =
  match src with
  | Insn.RM rm -> `Reg (rm_value b ~size ~tmp:t1 rm)
  | Insn.Imm v -> `Imm v

let alu_with_src b op ~size ~rd ~ra ~setflags ~readflags src =
  match src with
  | `Reg r -> alu b op ~size ~rd ~ra ~rb:r ~setflags ~readflags ()
  | `Imm v -> alu b op ~size ~rd ~ra ~imm:v ~setflags ~readflags ()

(* Write the 64-bit value in [src] into gpr [rd] with x86 sizing rules:
   full replace at B8, zero-extend at B4, merge at B1/B2. *)
let write_gpr b ~size ~rd ~src =
  push b { b.base with Uop.op = Uop.Mov; size; rd; ra = rd; rb = src }

(* Stack push of register [data]. *)
let emit_push_reg b data =
  alu b Uop.Sub ~size:W64.B8 ~rd:rsp ~ra:rsp ~imm:8L ();
  emit_store b ~size:W64.B8 (Insn.mem_bd rsp 0L) ~data

let assist b a =
  push b { b.base with Uop.op = Uop.Assist a }

(* Direction of flag state: rep ops ignore DF (always forward); see
   DESIGN.md deviations. *)
let string_step size = Int64.of_int (W64.bytes_of_size size)

(** Translate [insn] at [rip] with fall-through [next_rip] into its uop
    sequence. *)
let translate (insn : Insn.t) ~rip ~next_rip : Uop.t array =
  let b = make_builder ~rip ~next_rip in
  let rec go ?(locked = false) insn =
    match insn with
    | Insn.Locked inner -> go ~locked:true inner
    | Insn.Nop -> push b { b.base with Uop.op = Uop.Nop }
    | Insn.Alu (op, size, dst, src) ->
      let writeback = op <> Insn.Cmp in
      let uop = uop_of_alu op in
      let readflags = op = Insn.Adc || op = Insn.Sbb in
      (match dst with
      | Insn.Reg d ->
        let src = src_operand b ~size src in
        alu_with_src b uop ~size ~rd:(if writeback then d else Uop.reg_none)
          ~ra:d ~setflags:cc ~readflags src
      | Insn.Mem m ->
        let src = src_operand b ~size src in
        emit_load b ~locked ~size m ~dst:t0;
        alu_with_src b uop ~size ~rd:(if writeback then t0 else Uop.reg_none)
          ~ra:t0 ~setflags:cc ~readflags src;
        if writeback then emit_store b ~locked ~size m ~data:t0
        else if locked then
          (* cmp can carry LOCK only through the decoder rejecting it; keep
             the invariant that a locked load has a releasing store. *)
          emit_store b ~locked ~size m ~data:t0)
    | Insn.Test (size, dst, src) ->
      let a = rm_value b ~size ~tmp:t0 dst in
      let src = src_operand b ~size src in
      alu_with_src b Uop.And ~size ~rd:Uop.reg_none ~ra:a ~setflags:cc
        ~readflags:false src
    | Insn.Mov (size, dst, src) ->
      (match (dst, src) with
      | Insn.Reg d, Insn.Imm v ->
        push b { b.base with Uop.op = Uop.Mov; size; rd = d; ra = d; imm = v }
      | Insn.Reg d, Insn.RM (Insn.Reg s) ->
        push b { b.base with Uop.op = Uop.Mov; size; rd = d; ra = d; rb = s }
      | Insn.Reg d, Insn.RM (Insn.Mem m) ->
        (match size with
        | W64.B8 | W64.B4 ->
          (* loads zero-extend, matching x86 32-bit semantics *)
          emit_load b ~size m ~dst:d
        | W64.B1 | W64.B2 ->
          emit_load b ~size m ~dst:t0;
          write_gpr b ~size ~rd:d ~src:t0)
      | Insn.Mem m, Insn.Imm v ->
        push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = t0; imm = v };
        emit_store b ~size m ~data:t0
      | Insn.Mem m, Insn.RM (Insn.Reg s) -> emit_store b ~size m ~data:s
      | Insn.Mem _, Insn.RM (Insn.Mem _) ->
        invalid_arg "Microcode: mem-to-mem mov")
    | Insn.Movabs (d, v) ->
      push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = d; imm = v }
    | Insn.Lea (d, m) ->
      push b { (with_mem b.base m) with Uop.op = Uop.Lea; rd = d }
    | Insn.Movzx (dsize, ssize, d, rm) ->
      (* loads already zero-extend; register sources need an explicit zext *)
      let v =
        match rm with
        | Insn.Mem m ->
          emit_load b ~size:ssize m ~dst:t0;
          t0
        | Insn.Reg s ->
          push b { b.base with Uop.op = Uop.Zext; rd = t0; ra = s; mem_size = ssize };
          t0
      in
      write_gpr b ~size:dsize ~rd:d ~src:v
    | Insn.Movsx (dsize, ssize, d, rm) ->
      let v =
        match rm with
        | Insn.Mem m ->
          emit_load b ~size:ssize m ~dst:t0;
          t0
        | Insn.Reg s -> s
      in
      push b { b.base with Uop.op = Uop.Sext; rd = t0; ra = v; mem_size = ssize };
      write_gpr b ~size:dsize ~rd:d ~src:t0
    | Insn.Unary (op, size, dst) ->
      let emit_unary ~rd ~ra =
        match op with
        | Insn.Not -> push b { b.base with Uop.op = Uop.Not; size; rd; ra }
        | Insn.Neg -> push b { b.base with Uop.op = Uop.Neg; size; rd; ra; setflags = cc }
        | Insn.Inc ->
          alu b Uop.Add ~size ~rd ~ra ~imm:1L ~setflags:cc_no_cf ~readflags:true ()
        | Insn.Dec ->
          alu b Uop.Sub ~size ~rd ~ra ~imm:1L ~setflags:cc_no_cf ~readflags:true ()
      in
      (match dst with
      | Insn.Reg d -> emit_unary ~rd:d ~ra:d
      | Insn.Mem m ->
        emit_load b ~locked ~size m ~dst:t0;
        emit_unary ~rd:t0 ~ra:t0;
        emit_store b ~locked ~size m ~data:t0)
    | Insn.Shift (op, size, dst, count) ->
      let uop = uop_of_shift op in
      let emit_shift ~rd ~ra =
        match count with
        | Insn.ImmC n ->
          alu b uop ~size ~rd ~ra ~imm:(Int64.of_int n) ~setflags:cc ~readflags:true ()
        | Insn.Cl -> alu b uop ~size ~rd ~ra ~rb:rcx ~setflags:cc ~readflags:true ()
      in
      (match dst with
      | Insn.Reg d -> emit_shift ~rd:d ~ra:d
      | Insn.Mem m ->
        emit_load b ~locked ~size m ~dst:t0;
        emit_shift ~rd:t0 ~ra:t0;
        emit_store b ~locked ~size m ~data:t0)
    | Insn.Imul2 (size, d, rm) ->
      let v = rm_value b ~size ~tmp:t0 rm in
      alu b Uop.Mull ~size ~rd:d ~ra:d ~rb:v ~setflags:cc ()
    | Insn.Muldiv (op, size, rm) ->
      if size = W64.B1 then
        raise (Unimplemented "8-bit multiply/divide");
      let v = rm_value b ~size ~tmp:t0 rm in
      (match op with
      | Insn.Mul | Insn.Imul1 ->
        let high = if op = Insn.Mul then Uop.Mulhu else Uop.Mulhs in
        (* high half first (reads old rax), then low into rax, then rdx *)
        push b { b.base with Uop.op = high; size; rd = t1; ra = rax; rb = v };
        alu b Uop.Mull ~size ~rd:rax ~ra:rax ~rb:v ~setflags:cc ();
        write_gpr b ~size ~rd:rdx ~src:t1
      | Insn.Div | Insn.Idiv ->
        let quot = if op = Insn.Div then Uop.Divqu else Uop.Divqs in
        let rem = if op = Insn.Div then Uop.Remqu else Uop.Remqs in
        push b { b.base with Uop.op = quot; size; rd = t1; ra = rdx; rb = rax; rc = v };
        push b { b.base with Uop.op = rem; size; rd = t2; ra = rdx; rb = rax; rc = v };
        write_gpr b ~size ~rd:rax ~src:t1;
        write_gpr b ~size ~rd:rdx ~src:t2)
    | Insn.Push src ->
      let data =
        match src with
        | Insn.RM (Insn.Reg r) -> r
        | Insn.RM (Insn.Mem m) ->
          emit_load b ~size:W64.B8 m ~dst:t0;
          t0
        | Insn.Imm v ->
          push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = t0; imm = v };
          t0
      in
      emit_push_reg b data
    | Insn.Pop dst ->
      emit_load b ~size:W64.B8 (Insn.mem_bd rsp 0L) ~dst:t0;
      alu b Uop.Add ~size:W64.B8 ~rd:rsp ~ra:rsp ~imm:8L ();
      (match dst with
      | Insn.Reg d -> push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = d; rb = t0 }
      | Insn.Mem m -> emit_store b ~size:W64.B8 m ~data:t0)
    | Insn.Call target ->
      push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = t0; imm = next_rip };
      emit_push_reg b t0;
      push b { b.base with Uop.op = Uop.Bru; br_target = target; hint_call = true }
    | Insn.CallInd rm ->
      let target = rm_value b ~size:W64.B8 ~tmp:t1 rm in
      push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = t0; imm = next_rip };
      emit_push_reg b t0;
      push b { b.base with Uop.op = Uop.Jmpr; ra = target; hint_call = true }
    | Insn.Ret ->
      emit_load b ~size:W64.B8 (Insn.mem_bd rsp 0L) ~dst:t0;
      alu b Uop.Add ~size:W64.B8 ~rd:rsp ~ra:rsp ~imm:8L ();
      push b { b.base with Uop.op = Uop.Jmpr; ra = t0; hint_ret = true }
    | Insn.Jmp target -> push b { b.base with Uop.op = Uop.Bru; br_target = target }
    | Insn.JmpInd rm ->
      let target = rm_value b ~size:W64.B8 ~tmp:t0 rm in
      push b { b.base with Uop.op = Uop.Jmpr; ra = target }
    | Insn.Jcc (cond, target) ->
      push b { b.base with Uop.op = Uop.Brc cond; br_target = target; readflags = true }
    | Insn.Setcc (cond, dst) ->
      (match dst with
      | Insn.Reg d ->
        push b
          { b.base with Uop.op = Uop.Setc cond; size = W64.B1; rd = d; ra = d;
            readflags = true }
      | Insn.Mem m ->
        push b
          { b.base with Uop.op = Uop.Setc cond; size = W64.B1; rd = t0; ra = t0;
            readflags = true };
        emit_store b ~size:W64.B1 m ~data:t0)
    | Insn.Cmovcc (cond, size, d, rm) ->
      let v = rm_value b ~size ~tmp:t0 rm in
      push b
        { b.base with Uop.op = Uop.Sel cond; size; rd = d; ra = v; rb = d;
          readflags = true }
    | Insn.Xchg (size, dst, r) ->
      (match dst with
      | Insn.Mem m ->
        (* xchg with memory is implicitly locked on x86 *)
        emit_load b ~locked:true ~size m ~dst:t0;
        emit_store b ~locked:true ~size m ~data:r;
        write_gpr b ~size ~rd:r ~src:t0
      | Insn.Reg d ->
        push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = t0; rb = d };
        write_gpr b ~size ~rd:d ~src:r;
        write_gpr b ~size ~rd:r ~src:t0)
    | Insn.Xadd (size, dst, r) ->
      (match dst with
      | Insn.Mem m ->
        emit_load b ~locked ~size m ~dst:t0;
        alu b Uop.Add ~size ~rd:t1 ~ra:t0 ~rb:r ~setflags:cc ();
        emit_store b ~locked ~size m ~data:t1;
        write_gpr b ~size ~rd:r ~src:t0
      | Insn.Reg d ->
        push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = t0; rb = d };
        alu b Uop.Add ~size ~rd:d ~ra:d ~rb:r ~setflags:cc ();
        write_gpr b ~size ~rd:r ~src:t0)
    | Insn.Cmpxchg (size, dst, r) ->
      let old =
        match dst with
        | Insn.Mem m ->
          emit_load b ~locked ~size m ~dst:t0;
          t0
        | Insn.Reg d ->
          push b { b.base with Uop.op = Uop.Mov; size = W64.B8; rd = t0; rb = d };
          t0
      in
      (* flags from rax - old *)
      alu b Uop.Sub ~size ~rd:Uop.reg_none ~ra:rax ~rb:old ~setflags:cc ();
      (* value to store back: r if equal else the old value *)
      push b
        { b.base with Uop.op = Uop.Sel Flags.E; size = W64.B8; rd = t1; ra = r;
          rb = old; readflags = true };
      (match dst with
      | Insn.Mem m -> emit_store b ~locked ~size m ~data:t1
      | Insn.Reg d -> write_gpr b ~size ~rd:d ~src:t1);
      (* rax <- old value when not equal *)
      push b
        { b.base with Uop.op = Uop.Sel Flags.NE; size = W64.B8; rd = t2; ra = old;
          rb = rax; readflags = true };
      write_gpr b ~size ~rd:rax ~src:t2
    | Insn.Bittest (op, size, dst, src) ->
      let uop = uop_of_bittest op in
      let writes = op <> Insn.Bt in
      let idx_reg, idx_imm =
        match src with
        | Insn.Breg r -> (r, 0L)
        | Insn.Bimm n -> (Uop.reg_none, Int64.of_int n)
      in
      (match dst with
      | Insn.Reg d ->
        push b
          { b.base with Uop.op = uop; size; rd = (if writes then d else Uop.reg_none);
            ra = d; rb = idx_reg; imm = idx_imm; setflags = Flags.cf_mask;
            readflags = true }
      | Insn.Mem m ->
        emit_load b ~locked ~size m ~dst:t0;
        push b
          { b.base with Uop.op = uop; size; rd = (if writes then t0 else Uop.reg_none);
            ra = t0; rb = idx_reg; imm = idx_imm; setflags = Flags.cf_mask;
            readflags = true };
        if writes then emit_store b ~locked ~size m ~data:t0
        else if locked then emit_store b ~locked ~size m ~data:t0)
    | Insn.Movs (size, rep) ->
      let step = string_step size in
      if rep then
        push b
          { b.base with Uop.op = Uop.Brz; size = W64.B8; ra = rcx; br_target = next_rip };
      emit_load b ~size (Insn.mem_bd rsi 0L) ~dst:t0;
      emit_store b ~size (Insn.mem_bd rdi 0L) ~data:t0;
      alu b Uop.Add ~size:W64.B8 ~rd:rsi ~ra:rsi ~imm:step ();
      alu b Uop.Add ~size:W64.B8 ~rd:rdi ~ra:rdi ~imm:step ();
      if rep then begin
        alu b Uop.Sub ~size:W64.B8 ~rd:rcx ~ra:rcx ~imm:1L ();
        push b { b.base with Uop.op = Uop.Bru; br_target = rip }
      end
    | Insn.Stos (size, rep) ->
      let step = string_step size in
      if rep then
        push b
          { b.base with Uop.op = Uop.Brz; size = W64.B8; ra = rcx; br_target = next_rip };
      emit_store b ~size (Insn.mem_bd rdi 0L) ~data:rax;
      alu b Uop.Add ~size:W64.B8 ~rd:rdi ~ra:rdi ~imm:step ();
      if rep then begin
        alu b Uop.Sub ~size:W64.B8 ~rd:rcx ~ra:rcx ~imm:1L ();
        push b { b.base with Uop.op = Uop.Bru; br_target = rip }
      end
    | Insn.Lods (size, rep) ->
      let step = string_step size in
      if rep then
        push b
          { b.base with Uop.op = Uop.Brz; size = W64.B8; ra = rcx; br_target = next_rip };
      emit_load b ~size (Insn.mem_bd rsi 0L) ~dst:t0;
      write_gpr b ~size ~rd:rax ~src:t0;
      alu b Uop.Add ~size:W64.B8 ~rd:rsi ~ra:rsi ~imm:step ();
      if rep then begin
        alu b Uop.Sub ~size:W64.B8 ~rd:rcx ~ra:rcx ~imm:1L ();
        push b { b.base with Uop.op = Uop.Bru; br_target = rip }
      end
    | Insn.Hlt -> assist b Uop.A_hlt
    | Insn.Syscall -> assist b Uop.A_syscall
    | Insn.Sysret -> assist b Uop.A_sysret
    | Insn.Int n -> assist b (Uop.A_int n)
    | Insn.Iret -> assist b Uop.A_iret
    | Insn.Pushf -> assist b Uop.A_pushf
    | Insn.Popf -> assist b Uop.A_popf
    | Insn.Cli -> assist b Uop.A_cli
    | Insn.Sti -> assist b Uop.A_sti
    | Insn.Pause -> assist b Uop.A_pause
    | Insn.Ptlcall -> assist b Uop.A_ptlcall
    | Insn.Kcall -> assist b Uop.A_kcall
    | Insn.Rdtsc -> assist b Uop.A_rdtsc
    | Insn.Rdpmc -> assist b Uop.A_rdpmc
    | Insn.Cpuid -> assist b Uop.A_cpuid
    | Insn.MovToCr (cr, r) ->
      push b
        { b.base with Uop.op = Uop.Assist (Uop.A_mov_to_cr cr); imm = Int64.of_int r }
    | Insn.MovFromCr (cr, r) ->
      push b
        { b.base with Uop.op = Uop.Assist (Uop.A_mov_from_cr cr); imm = Int64.of_int r }
    | Insn.Invlpg m ->
      push b { (with_mem b.base m) with Uop.op = Uop.Lea; rd = t0 };
      assist b Uop.A_invlpg
    | Insn.Fld m -> emit_load b ~size:W64.B8 m ~dst:Uop.reg_st0
    | Insn.Fst m -> emit_store b ~size:W64.B8 m ~data:Uop.reg_st0
    | Insn.Fp (op, m) ->
      emit_load b ~size:W64.B8 m ~dst:t0;
      push b
        { b.base with Uop.op = uop_of_fp op; rd = Uop.reg_st0; ra = Uop.reg_st0;
          rb = t0 }
    | Insn.SseLoad (x, m) -> emit_load b ~size:W64.B8 m ~dst:(Uop.xmm x)
    | Insn.SseStore (m, x) -> emit_store b ~size:W64.B8 m ~data:(Uop.xmm x)
    | Insn.SseMov (xd, xs) ->
      push b { b.base with Uop.op = Uop.Fmov; rd = Uop.xmm xd; rb = Uop.xmm xs }
    | Insn.Sse (op, xd, xs) ->
      push b
        { b.base with Uop.op = uop_of_sse op; rd = Uop.xmm xd; ra = Uop.xmm xd;
          rb = Uop.xmm xs }
    | Insn.Cvtsi2sd (x, r) ->
      push b { b.base with Uop.op = Uop.I2f; rd = Uop.xmm x; ra = r }
    | Insn.Cvtsd2si (r, x) ->
      push b { b.base with Uop.op = Uop.F2i; rd = r; ra = Uop.xmm x }
    | Insn.Comisd (xa, xb) ->
      push b
        { b.base with Uop.op = Uop.Fcmp; ra = Uop.xmm xa; rb = Uop.xmm xb;
          setflags = cc }
  in
  go insn;
  finish b
