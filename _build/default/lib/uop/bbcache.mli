(** The basic block cache: pre-decoded uop sequences keyed by virtual RIP,
    physical frame and context bits, with self-modifying-code
    invalidation (paper §2.1). Performance-only: it never changes the
    architecturally visible behaviour of the machine. *)

type key = { krip : int64; kmfn : int; kkernel : bool }

type bb = {
  key : key;
  uops : Uop.t array;
  insn_count : int;
  byte_len : int;
  mfns : int list;  (* every frame the block's instruction bytes touch *)
  fallthrough_rip : int64;
  terminated : bool;  (* ends in a branch/assist vs a size-limit cut *)
}

type t

val create : ?max_insns:int -> ?max_uops:int -> Ptl_stats.Statstree.t -> t

(** Translate a block at [rip] (not cached yet). [fetch] supplies
    instruction bytes by virtual address; [mfn_of] maps a virtual address
    to its frame. Faults on the first instruction propagate; mid-block
    faults cut the block so the fault is taken when fetch reaches it. *)
val build :
  t ->
  rip:int64 ->
  kernel:bool ->
  fetch:(int64 -> int) ->
  mfn_of:(int64 -> int) ->
  bb

(** Look up, building and caching on miss. *)
val lookup :
  t ->
  rip:int64 ->
  kernel:bool ->
  fetch:(int64 -> int) ->
  mfn_of:(int64 -> int) ->
  bb

(** Invalidate every block decoded from a frame; returns the count. *)
val invalidate_mfn : t -> int -> int

(** Does the frame back any cached code? (cheap store-commit check) *)
val mfn_has_code : t -> int -> bool

(** A committed store hit this frame: invalidates its blocks and returns
    true when the caller must flush its pipeline (the SMC protocol). *)
val store_committed : t -> int -> bool

val size : t -> int
val clear : t -> unit
