lib/uop/bbcache.ml: Array Hashtbl Int64 List Microcode Ptl_isa Ptl_stats Uop
