lib/uop/uop.ml: Buffer Printf Ptl_isa Ptl_util W64
