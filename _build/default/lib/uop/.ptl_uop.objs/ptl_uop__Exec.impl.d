lib/uop/exec.ml: Float Int64 Ptl_isa Ptl_util Uop W64
