lib/uop/microcode.ml: Array Int64 List Ptl_isa Ptl_util Uop W64
