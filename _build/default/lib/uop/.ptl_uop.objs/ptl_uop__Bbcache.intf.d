lib/uop/bbcache.mli: Ptl_stats Uop
