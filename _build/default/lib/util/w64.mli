(** 64-bit machine words and size-truncated arithmetic.

    Guest register values are [int64] (OCaml's native [int] is 63 bits).
    This module is the single definition of the unsigned comparisons,
    carry/overflow detection, truncation and sign extension that underlie
    every ALU result in the simulator, so flag semantics live in exactly
    one place. *)

type t = int64

val zero : t
val one : t
val minus_one : t

(** Operand widths of the guest ISA, in bytes. *)
type size = B1 | B2 | B4 | B8

val bytes_of_size : size -> int
val bits_of_size : size -> int

(** Inverse of [bytes_of_size]; raises [Invalid_argument] on other
    values. *)
val size_of_bytes : int -> size

(** One-letter suffix ("b"/"w"/"d"/"q"), for disassembly. *)
val size_to_string : size -> string

val mask_of_size : size -> t

(** Keep only the low [size] bytes (zero-extending). *)
val truncate : size -> t -> t

(** Sign-extend the low [size] bytes of the value to 64 bits. *)
val sign_extend : size -> t -> t

(** Sign bit of the low [size] bytes. *)
val sign_bit : size -> t -> bool

val is_zero : size -> t -> bool

(** Unsigned comparison with the [compare] convention. *)
val ucompare : t -> t -> int

val ult : t -> t -> bool
val ule : t -> t -> bool

(** x86 PF: true when the low 8 bits have even parity. *)
val parity : t -> bool

(** [add_carry size a b carry_in] is [(result, carry_out, overflow)] for
    the addition at the given width; the result is truncated. *)
val add_carry : size -> t -> t -> bool -> t * bool * bool

(** [sub_borrow size a b borrow_in] matches x86 [sbb] semantics. *)
val sub_borrow : size -> t -> t -> bool -> t * bool * bool

(** Shifts and rotates return [(result, carry_out, overflow)] where the
    flag components are [None] when x86 leaves them unchanged (count 0;
    overflow defined only for 1-bit shifts). Counts are masked to the
    operand width as on x86. *)
val shl : size -> t -> int -> t * bool option * bool option

val shr : size -> t -> int -> t * bool option * bool option
val sar : size -> t -> int -> t * bool option * bool option
val rol : size -> t -> int -> t * bool option * bool option
val ror : size -> t -> int -> t * bool option * bool option

(** Full 64x64 -> 128-bit multiplies; [(low, high)]. *)
val umul128 : t -> t -> t * t

val smul128 : t -> t -> t * t

(** Byte [i] (0 = least significant). *)
val byte : t -> int -> int

(** Assemble a word from [n] little-endian bytes produced by the
    function. *)
val of_bytes : int -> (int -> int) -> t

val to_hex : t -> string
val pp : Format.formatter -> t -> unit
