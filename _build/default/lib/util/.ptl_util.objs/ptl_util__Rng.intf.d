lib/util/rng.mli:
