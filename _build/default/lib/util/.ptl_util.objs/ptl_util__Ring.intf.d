lib/util/ring.mli:
