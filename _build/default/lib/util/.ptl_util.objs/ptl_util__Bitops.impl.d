lib/util/bitops.ml: Int64
