lib/util/w64.mli: Format
