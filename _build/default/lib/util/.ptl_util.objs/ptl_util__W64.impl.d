lib/util/w64.ml: Format Int64 Printf
