(** Plain-text table rendering for benchmark reports.

    Used by the bench harness to print the paper's Table 1 layout and the
    time-lapse series of Figures 2 and 3 as aligned text. *)

type align = Left | Right

(** [render ~headers ~aligns rows] returns the table as a string, one row per
    line, columns padded to the widest cell, with a rule under the header. *)
let render ~headers ~aligns rows =
  let ncols = Array.length headers in
  if Array.length aligns <> ncols then invalid_arg "Tablefmt.render: aligns";
  List.iter
    (fun row ->
      if Array.length row <> ncols then invalid_arg "Tablefmt.render: row width")
    rows;
  let widths = Array.map String.length headers in
  List.iter
    (fun row ->
      Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let pad i cell =
    let n = widths.(i) - String.length cell in
    match aligns.(i) with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let line row =
    String.concat "  " (Array.to_list (Array.mapi pad row))
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (line headers :: rule :: List.map line rows)

(** Format a count in thousands with comma separators, like the paper's
    Table 1 ("1,482,035K"). *)
let thousands n =
  let k = n / 1000 in
  let s = string_of_int (abs k) in
  let buf = Buffer.create (String.length s + 4) in
  let len = String.length s in
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  (if k < 0 then "-" else "") ^ Buffer.contents buf ^ "K"

(** Signed percentage with two decimals, e.g. "+4.30%". *)
let pct_diff reference value =
  if reference = 0.0 then "n/a"
  else
    let d = (value -. reference) /. reference *. 100.0 in
    Printf.sprintf "%+.2f%%" d

(** An ASCII sparkline-style plot: one output line per series row, where the
    value is scaled into [width] columns. Used for Figures 2 and 3. *)
let ascii_series ~label ~width ~max_value values =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s (max=%.3f)\n" label max_value);
  List.iteri
    (fun i v ->
      let n =
        if max_value <= 0.0 then 0
        else int_of_float (Float.min 1.0 (v /. max_value) *. float_of_int width)
      in
      Buffer.add_string buf (Printf.sprintf "%5d |%s%s| %.4f\n" i (String.make n '#') (String.make (width - n) ' ') v))
    values;
  Buffer.contents buf
