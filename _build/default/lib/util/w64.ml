(** 64-bit machine words and size-truncated arithmetic.

    Guest register values are [int64] (OCaml's native [int] is 63 bits wide).
    This module centralises the unsigned comparisons, carry/overflow
    detection, truncation and sign extension needed by both the functional
    core and the out-of-order core's ALU models, so flag semantics are
    defined in exactly one place. *)

type t = int64

let zero = 0L
let one = 1L
let minus_one = -1L

(* Operand widths of the guest ISA, in bytes. *)
type size = B1 | B2 | B4 | B8

let bytes_of_size = function B1 -> 1 | B2 -> 2 | B4 -> 4 | B8 -> 8
let bits_of_size = function B1 -> 8 | B2 -> 16 | B4 -> 32 | B8 -> 64

let size_of_bytes = function
  | 1 -> B1
  | 2 -> B2
  | 4 -> B4
  | 8 -> B8
  | n -> invalid_arg (Printf.sprintf "W64.size_of_bytes: %d" n)

let size_to_string = function B1 -> "b" | B2 -> "w" | B4 -> "d" | B8 -> "q"

let mask_of_size = function
  | B1 -> 0xFFL
  | B2 -> 0xFFFFL
  | B4 -> 0xFFFF_FFFFL
  | B8 -> -1L

(** Keep only the low [size] bytes (zero-extending). *)
let truncate size v = Int64.logand v (mask_of_size size)

(** Sign-extend the low [size] bytes of [v] to 64 bits. *)
let sign_extend size v =
  match size with
  | B1 -> Int64.shift_right (Int64.shift_left v 56) 56
  | B2 -> Int64.shift_right (Int64.shift_left v 48) 48
  | B4 -> Int64.shift_right (Int64.shift_left v 32) 32
  | B8 -> v

(** Sign bit of the low [size] bytes. *)
let sign_bit size v =
  Int64.logand (Int64.shift_right_logical v (bits_of_size size - 1)) 1L = 1L

let is_zero size v = truncate size v = 0L

(** Unsigned comparison: negative, zero or positive like [compare]. *)
let ucompare a b = Int64.unsigned_compare a b

let ult a b = ucompare a b < 0
let ule a b = ucompare a b <= 0

(** Parity flag of the low byte (set when the low 8 bits have even parity),
    matching the x86 PF definition. *)
let parity v =
  let b = Int64.to_int (Int64.logand v 0xFFL) in
  let b = b lxor (b lsr 4) in
  let b = b lxor (b lsr 2) in
  let b = b lxor (b lsr 1) in
  b land 1 = 0

(** [add_carry size a b cin] returns [(result, carry_out, overflow)] for the
    addition of the low [size] bytes of [a] and [b] plus carry-in. The result
    is truncated to [size]. *)
let add_carry size a b cin =
  let a = truncate size a and b = truncate size b in
  let c = if cin then 1L else 0L in
  let full = Int64.add (Int64.add a b) c in
  let r = truncate size full in
  let carry =
    match size with
    | B8 ->
      (* Carry out of bit 63: r < a, or r = a with carry-in consuming b. *)
      ult full a || (cin && full = a)
    | _ -> Int64.logand full (Int64.shift_left 1L (bits_of_size size)) <> 0L
  in
  let sa = sign_bit size a and sb = sign_bit size b and sr = sign_bit size r in
  let overflow = sa = sb && sr <> sa in
  (r, carry, overflow)

(** [sub_borrow size a b bin] returns [(result, borrow_out, overflow)] for
    [a - b - bin] on the low [size] bytes, matching x86 [sbb] semantics. *)
let sub_borrow size a b bin =
  let a = truncate size a and b = truncate size b in
  let c = if bin then 1L else 0L in
  let full = Int64.sub (Int64.sub a b) c in
  let r = truncate size full in
  let borrow = ult a b || (bin && a = b) in
  let sa = sign_bit size a and sb = sign_bit size b and sr = sign_bit size r in
  let overflow = sa <> sb && sr <> sa in
  (r, borrow, overflow)

(** Logical shift left on the low [size] bytes. Returns
    [(result, last_bit_shifted_out, overflow)] where overflow follows the x86
    rule for 1-bit shifts (CF <> new sign). Count is masked to the operand
    width as on x86 (mod 32 for <=32-bit, mod 64 for 64-bit). *)
let shl size v count =
  let width = bits_of_size size in
  let count = count land (if size = B8 then 63 else 31) in
  if count = 0 then (truncate size v, None, None)
  else if count >= width then (0L, Some (count = width && Int64.logand v 1L = 1L), None)
  else begin
    let v = truncate size v in
    let r = truncate size (Int64.shift_left v count) in
    let cf = Int64.logand (Int64.shift_right_logical v (width - count)) 1L = 1L in
    let ov = if count = 1 then Some (cf <> sign_bit size r) else None in
    (r, Some cf, ov)
  end

let shr size v count =
  let width = bits_of_size size in
  let count = count land (if size = B8 then 63 else 31) in
  if count = 0 then (truncate size v, None, None)
  else if count >= width then (0L, Some false, None)
  else begin
    let v = truncate size v in
    let r = Int64.shift_right_logical v count in
    let cf = Int64.logand (Int64.shift_right_logical v (count - 1)) 1L = 1L in
    let ov = if count = 1 then Some (sign_bit size v) else None in
    (r, Some cf, ov)
  end

let sar size v count =
  let width = bits_of_size size in
  let count = count land (if size = B8 then 63 else 31) in
  if count = 0 then (truncate size v, None, None)
  else begin
    let sv = sign_extend size v in
    let count' = min count (width - 1) in
    let r = truncate size (Int64.shift_right sv count') in
    let cf =
      if count >= width then sign_bit size v
      else Int64.logand (Int64.shift_right sv (count - 1)) 1L = 1L
    in
    let ov = if count = 1 then Some false else None in
    (r, Some cf, ov)
  end

let rol size v count =
  let width = bits_of_size size in
  let count = count mod width in
  let v = truncate size v in
  if count = 0 then (v, None, None)
  else begin
    let r =
      truncate size
        (Int64.logor (Int64.shift_left v count)
           (Int64.shift_right_logical v (width - count)))
    in
    let cf = Int64.logand r 1L = 1L in
    let ov = if count = 1 then Some (cf <> sign_bit size r) else None in
    (r, Some cf, ov)
  end

let ror size v count =
  let width = bits_of_size size in
  let count = count mod width in
  let v = truncate size v in
  if count = 0 then (v, None, None)
  else begin
    let r =
      truncate size
        (Int64.logor (Int64.shift_right_logical v count)
           (Int64.shift_left v (width - count)))
    in
    let cf = sign_bit size r in
    let ov =
      if count = 1 then
        Some (sign_bit size r <> (Int64.logand (Int64.shift_right_logical r (width - 2)) 1L = 1L))
      else None
    in
    (r, Some cf, ov)
  end

(** Full 64x64 -> 128-bit unsigned multiply; returns (low, high). *)
let umul128 a b =
  let mask32 = 0xFFFF_FFFFL in
  let al = Int64.logand a mask32 and ah = Int64.shift_right_logical a 32 in
  let bl = Int64.logand b mask32 and bh = Int64.shift_right_logical b 32 in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  let mid = Int64.add (Int64.add lh hl) (Int64.shift_right_logical ll 32) in
  (* Carry out of the mid sum into the high word. *)
  let carry = if ult mid lh then Int64.shift_left 1L 32 else 0L in
  let lo = Int64.logor (Int64.shift_left mid 32) (Int64.logand ll mask32) in
  let hi =
    Int64.add (Int64.add hh (Int64.shift_right_logical mid 32)) carry
  in
  (lo, hi)

(** Signed 64x64 -> 128-bit multiply; returns (low, high). *)
let smul128 a b =
  let lo, hi = umul128 a b in
  let hi = if a < 0L then Int64.sub hi b else hi in
  let hi = if b < 0L then Int64.sub hi a else hi in
  (lo, hi)

(** Byte [i] (0 = least significant) of [v]. *)
let byte v i = Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)

(** Assemble a word from [n] little-endian bytes produced by [f]. *)
let of_bytes n f =
  let rec go i acc =
    if i >= n then acc
    else go (i + 1) (Int64.logor acc (Int64.shift_left (Int64.of_int (f i land 0xFF)) (8 * i)))
  in
  go 0 0L

let to_hex v = Printf.sprintf "0x%Lx" v
let pp fmt v = Format.fprintf fmt "%#Lx" v
