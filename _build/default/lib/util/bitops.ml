(** Small integer bit-manipulation helpers shared across the simulator. *)

(** Floor of log2; [log2 1 = 0]. Raises on non-positive input. *)
let log2 n =
  if n <= 0 then invalid_arg "Bitops.log2";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let is_pow2 n = n > 0 && n land (n - 1) = 0

(** Round [n] up to the next multiple of [align] (a power of two). *)
let align_up n align = (n + align - 1) land lnot (align - 1)

let align_down n align = n land lnot (align - 1)

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
  go n 0

(** Extract bits [lo..lo+len-1] of [n]. *)
let bits n ~lo ~len = (n lsr lo) land ((1 lsl len) - 1)

(** Fold a 64-bit value down to [bits] bits by xor-folding; used for
    predictor and cache index hashing. *)
let fold64 v bits =
  let mask = Int64.of_int ((1 lsl bits) - 1) in
  let rec go v acc =
    if v = 0L then acc
    else
      go (Int64.shift_right_logical v bits) (Int64.logxor acc (Int64.logand v mask))
  in
  Int64.to_int (go v 0L)
