lib/stats/timelapse.ml: Array Buffer List Statstree String
