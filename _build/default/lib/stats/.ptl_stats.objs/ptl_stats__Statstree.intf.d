lib/stats/statstree.mli:
