lib/stats/statstree.ml: Array Buffer Hashtbl List Printf String
