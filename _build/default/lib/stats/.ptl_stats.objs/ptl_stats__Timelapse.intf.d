lib/stats/timelapse.mli: Statstree
