(** Hierarchical named event counters — the core of the PTLstats subsystem.

    Every simulator structure registers counters under a dotted path (for
    example ["ooo.commit.insns"] or ["external.cycles_in_mode.kernel"]).
    Counters are plain mutable ints behind a handle, so the hot simulation
    loop pays one array store per event. Snapshots capture the value of
    every counter at a point in simulated time; subtracting snapshots gives
    per-interval statistics, which is how the paper's time-lapse plots
    (Figures 2 and 3) are produced. *)

type counter = { id : int; path : string; mutable value : int }

type t = {
  mutable counters : counter array;
  index : (string, counter) Hashtbl.t;
  mutable n : int;
}

let create () =
  let dummy = { id = -1; path = ""; value = 0 } in
  { counters = Array.make 64 dummy; index = Hashtbl.create 64; n = 0 }

(** Register (or look up) the counter at [path]. Registering the same path
    twice returns the same counter, so independent subsystems may share a
    counter by name. *)
let counter t path =
  match Hashtbl.find_opt t.index path with
  | Some c -> c
  | None ->
    if t.n = Array.length t.counters then begin
      let bigger = Array.make (2 * t.n) t.counters.(0) in
      Array.blit t.counters 0 bigger 0 t.n;
      t.counters <- bigger
    end;
    let c = { id = t.n; path; value = 0 } in
    t.counters.(t.n) <- c;
    t.n <- t.n + 1;
    Hashtbl.add t.index path c;
    c

let incr c = c.value <- c.value + 1
let add c n = c.value <- c.value + n
let set c n = c.value <- n
let value c = c.value

let find t path = Hashtbl.find_opt t.index path

(** Current value of the counter at [path], or 0 if never registered. *)
let get t path = match find t path with Some c -> c.value | None -> 0

(** All registered paths, in registration order. *)
let paths t = List.init t.n (fun i -> t.counters.(i).path)

(** A snapshot is an immutable copy of every counter value, stamped with the
    simulated cycle at which it was taken. *)
type snapshot = { cycle : int; values : int array; snap_paths : string array }

let snapshot t ~cycle =
  {
    cycle;
    values = Array.init t.n (fun i -> t.counters.(i).value);
    snap_paths = Array.init t.n (fun i -> t.counters.(i).path);
  }

(** [delta older newer path] is the increase of [path] between two snapshots.
    Counters registered after [older] was taken count from zero. *)
let delta older newer path =
  let look s =
    let rec go i =
      if i >= Array.length s.snap_paths then 0
      else if String.equal s.snap_paths.(i) path then s.values.(i)
      else go (i + 1)
    in
    go 0
  in
  look newer - look older

let snapshot_get s path =
  let rec go i =
    if i >= Array.length s.snap_paths then None
    else if String.equal s.snap_paths.(i) path then Some s.values.(i)
    else go (i + 1)
  in
  go 0

(** Render all counters whose path starts with [prefix] (default all). *)
let dump ?(prefix = "") t =
  let buf = Buffer.create 1024 in
  for i = 0 to t.n - 1 do
    let c = t.counters.(i) in
    if String.length c.path >= String.length prefix
       && String.sub c.path 0 (String.length prefix) = prefix
    then Buffer.add_string buf (Printf.sprintf "%s = %d\n" c.path c.value)
  done;
  Buffer.contents buf

let reset t = Array.iter (fun c -> c.value <- 0) (Array.sub t.counters 0 t.n)
