(** Hierarchical named event counters — the core of the PTLstats
    subsystem (paper §2.3/§5).

    Counters register under dotted paths ("ooo.commit.insns"); snapshots
    capture every counter at a point in simulated time, and snapshot
    subtraction yields the per-interval statistics behind the paper's
    time-lapse plots. *)

type t

(** A registered counter: one mutable cell, O(1) updates. *)
type counter

val create : unit -> t

(** Register (or look up) the counter at a path; the same path always
    returns the same counter. *)
val counter : t -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val set : counter -> int -> unit
val value : counter -> int
val find : t -> string -> counter option

(** Current value at a path; 0 if never registered. *)
val get : t -> string -> int

(** All registered paths, in registration order. *)
val paths : t -> string list

(** An immutable copy of every counter, stamped with the cycle it was
    taken at. *)
type snapshot = { cycle : int; values : int array; snap_paths : string array }

val snapshot : t -> cycle:int -> snapshot

(** Increase of a path between two snapshots; counters registered after
    the older snapshot count from zero. *)
val delta : snapshot -> snapshot -> string -> int

val snapshot_get : snapshot -> string -> int option

(** Text dump of all counters whose path starts with [prefix]. *)
val dump : ?prefix:string -> t -> string

(** Zero every counter (the ptlcall [-flushstats] command). *)
val reset : t -> unit
