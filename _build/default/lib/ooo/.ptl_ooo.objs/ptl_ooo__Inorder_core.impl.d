lib/ooo/inorder_core.ml: Config Int64 List Ptl_arch Ptl_bpred Ptl_mem Ptl_stats
