lib/ooo/physreg.ml: Array Queue
