lib/ooo/ooo_core.ml: Array Config Int64 Interlock List Option Physreg Printf Ptl_arch Ptl_bpred Ptl_isa Ptl_mem Ptl_stats Ptl_uop Ptl_util Ring W64
