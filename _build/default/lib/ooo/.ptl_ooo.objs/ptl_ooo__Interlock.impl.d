lib/ooo/interlock.ml: Hashtbl List Printf Ptl_stats
