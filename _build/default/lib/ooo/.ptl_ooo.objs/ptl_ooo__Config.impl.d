lib/ooo/config.ml: Printf Ptl_bpred Ptl_mem Ptl_uop
