lib/ooo/registry.ml: Array Config Hashtbl Inorder_core Ooo_core Ptl_arch
