lib/ooo/interlock.mli: Hashtbl Ptl_stats
