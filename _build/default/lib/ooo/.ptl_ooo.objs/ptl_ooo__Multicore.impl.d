lib/ooo/multicore.ml: Array Config Interlock Ooo_core Printf Ptl_arch Ptl_mem Ptl_uop
