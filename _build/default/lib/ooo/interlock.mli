(** The interlock controller for LOCK-prefixed instructions (paper §4.4),
    shared by all SMT threads of a core and by all cores.

    A locked load (ld.l) acquires the lock on a word-aligned physical
    address; the matching releasing store (st.rel) drops it at commit.
    Plain loads/stores to an interlocked address replay until release.
    Starvation control: locks are non-recursive, a contended release
    enters a short cooldown (plain accesses exempt), and waiters are
    granted FIFO reservations with expiry — the fairness half of the
    paper's "deadlock prevention schemes". *)

type owner = { core : int; thread : int; mutable was_contended : bool }

type t = {
  locks : (int, owner) Hashtbl.t;
  cooldown : (int, int) Hashtbl.t;
  waiters : (int, (int * int) list) Hashtbl.t;
  reserved : (int, int * int * int) Hashtbl.t;
  acquires : Ptl_stats.Statstree.counter;
  contended : Ptl_stats.Statstree.counter;
  mutable trace_enabled : bool;
  mutable trace : string list;
}

val create : Ptl_stats.Statstree.t -> t

(** Debug event log (no cost when [trace_enabled] is false). *)
val trace : t -> ('a, unit, string, unit) format4 -> 'a

(** Try to acquire the interlock for (core, thread) at the given cycle. *)
val acquire : t -> cycle:int -> core:int -> thread:int -> paddr:int -> bool

(** Release (owner only); a contended hold enters cooldown and hands a
    reservation to the oldest waiter. *)
val release : t -> cycle:int -> core:int -> thread:int -> paddr:int -> unit

(** Release everything held by (core, thread) — pipeline flush path. *)
val release_all : t -> cycle:int -> core:int -> thread:int -> unit

val held : t -> paddr:int -> bool

(** Whether someone other than (core, thread) holds the address: plain
    loads and stores touching it must replay. *)
val locked_by_other : t -> core:int -> thread:int -> paddr:int -> bool

val count : t -> int
