(** The interlock controller for LOCK-prefixed instructions (paper §4.4).

    Each locked load (ld.l) acquires a lock on a physical memory address by
    sending it here; the lock is shared by all SMT threads within a core
    and, in multi-core configurations, by all cores. Later locked loads to
    the same address from other threads replay until the owner's releasing
    store (st.rel) commits. Ownership is keyed by (core, thread) so a
    thread's own replayed uops re-acquire freely. *)

type owner = { core : int; thread : int; mutable was_contended : bool }

type t = {
  (* word-granular lock table: paddr (aligned to 8) -> owner.

     Starvation control (the paper's §2.2 "deadlock prevention schemes"):
     the lock is non-recursive — a speculative later iteration of a spin
     loop cannot chain a second acquisition while the first is held — and
     a release that experienced contention leaves the address in a short
     cooldown during which no one may re-acquire. Plain loads/stores are
     NOT subject to the cooldown, so the thread whose release store was
     being starved by the spinning xchg gets a guaranteed window. *)
  locks : (int, owner) Hashtbl.t;
  cooldown : (int, int) Hashtbl.t;  (* key -> first cycle acquirable again *)
  (* FIFO fairness: threads that failed an acquisition queue here; a
     contended release reserves the lock for the oldest waiter so a fixed
     cluster/issue ordering cannot starve one spinner forever. Stale
     reservations (annulled waiters) expire. *)
  waiters : (int, (int * int) list) Hashtbl.t;
  reserved : (int, int * int * int) Hashtbl.t;  (* key -> core, thread, expiry *)
  acquires : Ptl_stats.Statstree.counter;
  contended : Ptl_stats.Statstree.counter;
  mutable trace_enabled : bool;  (* record recent lock events for debugging *)
  mutable trace : string list;  (* newest first, bounded *)
}

(* Event tracing is free when disabled (the common case): the format
   arguments are only rendered when a debugger turned it on. *)
let trace t fmt =
  if t.trace_enabled then
    Printf.ksprintf
      (fun s ->
        t.trace <-
          (if List.length t.trace > 80 then
             s :: List.filteri (fun i _ -> i < 60) t.trace
           else s :: t.trace))
      fmt
  else Printf.ksprintf ignore fmt

let cooldown_cycles = 8
let reservation_cycles = 64

let create stats =
  {
    locks = Hashtbl.create 64;
    cooldown = Hashtbl.create 64;
    waiters = Hashtbl.create 64;
    reserved = Hashtbl.create 64;
    acquires = Ptl_stats.Statstree.counter stats "interlock.acquires";
    contended = Ptl_stats.Statstree.counter stats "interlock.contended";
    trace_enabled = false;
    trace = [];
  }

let key paddr = paddr land lnot 7

let enqueue_waiter t k ~core ~thread =
  let l = try Hashtbl.find t.waiters k with Not_found -> [] in
  if not (List.mem (core, thread) l) then Hashtbl.replace t.waiters k (l @ [ (core, thread) ])

let remove_waiter t k ~core ~thread =
  match Hashtbl.find_opt t.waiters k with
  | None -> ()
  | Some l -> Hashtbl.replace t.waiters k (List.filter (fun w -> w <> (core, thread)) l)

(** Try to acquire the interlock on [paddr] for (core, thread) at [cycle].
    Returns true on success. *)
let acquire t ~cycle ~core ~thread ~paddr =
  let k = key paddr in
  let fail () =
    enqueue_waiter t k ~core ~thread;
    Ptl_stats.Statstree.incr t.contended;
    false
  in
  match Hashtbl.find_opt t.locks k with
  | Some _ -> fail ()
  | None -> (
    match Hashtbl.find_opt t.cooldown k with
    | Some until when cycle < until -> fail ()
    | _ -> (
      match Hashtbl.find_opt t.reserved k with
      | Some (c, th, expiry) when cycle < expiry && not (c = core && th = thread) ->
        fail ()
      | _ ->
        Hashtbl.remove t.cooldown k;
        Hashtbl.remove t.reserved k;
        remove_waiter t k ~core ~thread;
        Hashtbl.replace t.locks k { core; thread; was_contended = false };
        Ptl_stats.Statstree.incr t.acquires;
        trace t "%d: acq %x by (%d,%d)" cycle k core thread;
        true))

(** Release the interlock (at st.rel commit, or when the locked macro-op
    is annulled). Only the owner's release has effect. A contended hold
    enters cooldown so starved plain accesses get a window. *)
let release t ~cycle ~core ~thread ~paddr =
  let k = key paddr in
  match Hashtbl.find_opt t.locks k with
  | Some o when o.core = core && o.thread = thread ->
    Hashtbl.remove t.locks k;
    trace t "%d: rel %x by (%d,%d)" cycle k core thread;
    if o.was_contended then Hashtbl.replace t.cooldown k (cycle + cooldown_cycles);
    (* hand the next turn to the oldest waiter, if any *)
    (match Hashtbl.find_opt t.waiters k with
    | Some ((wc, wt) :: rest) ->
      Hashtbl.replace t.waiters k rest;
      Hashtbl.replace t.reserved k
        (wc, wt, cycle + cooldown_cycles + reservation_cycles)
    | Some [] | None -> ())
  | Some _ | None -> ()

(** Release every lock held by (core, thread) — pipeline flush path. *)
let release_all t ~cycle ~core ~thread =
  let mine =
    Hashtbl.fold
      (fun k o acc ->
        if o.core = core && o.thread = thread then (k, o.was_contended) :: acc
        else acc)
      t.locks []
  in
  List.iter
    (fun (k, contended) ->
      Hashtbl.remove t.locks k;
      if contended then Hashtbl.replace t.cooldown k (cycle + cooldown_cycles))
    mine

let held t ~paddr = Hashtbl.mem t.locks (key paddr)

(** Is [paddr] interlocked by someone other than (core, thread)? Plain
    loads and stores touching such an address must replay until the owner
    releases (paper §4.4). *)
let locked_by_other t ~core ~thread ~paddr =
  match Hashtbl.find_opt t.locks (key paddr) with
  | Some o ->
    if o.core = core && o.thread = thread then false
    else begin
      o.was_contended <- true;
      true
    end
  | None -> false
let count t = Hashtbl.length t.locks
