(** Multi-core simulation driver.

    "To support multi-processor machines with many VCPUs, multiple core
    instances can operate in parallel; the simulator control logic
    automatically advances each core by one cycle in round robin order and
    provides memory synchronization facilities shared by all cores" (§2.2).

    Cores share guest physical memory, the basic block cache (so
    self-modifying code invalidates globally), the interlock controller
    (cross-core LOCK semantics) and a coherence directory. Each core has a
    private cache hierarchy, TLBs and branch predictor; directory penalties
    are installed into every hierarchy, with "instant visibility" (zero
    penalty, the released PTLsim's default) or MOESI with real transfer
    costs (the paper's future-work model, implemented here). *)

module Env = Ptl_arch.Env
module Context = Ptl_arch.Context
module Coherence = Ptl_mem.Coherence
module Hierarchy = Ptl_mem.Hierarchy

type t = {
  env : Env.t;
  cores : Ooo_core.t array;
  directory : Coherence.t;
}

(** Build an [ncores] machine, one context per core (per thread when the
    config is SMT). [contexts] must supply ncores * smt_threads contexts. *)
let create ?(coherence = Coherence.Instant) (config : Config.t) env contexts =
  let threads_per_core = config.Config.smt_threads in
  if Array.length contexts mod threads_per_core <> 0 then
    invalid_arg "Multicore.create: contexts vs threads";
  let ncores = Array.length contexts / threads_per_core in
  let stats = env.Env.stats in
  let bbcache = Ptl_uop.Bbcache.create stats in
  let interlock = Interlock.create stats in
  let directory =
    Coherence.create stats ~mode:coherence ~ncores
      ~line_size:config.Config.hierarchy.Hierarchy.l1d.Ptl_mem.Cache.line_size
  in
  let cores =
    Array.init ncores (fun i ->
        let ctxs =
          Array.sub contexts (i * threads_per_core) threads_per_core
        in
        Ooo_core.create ~core_id:i
          ~prefix:(Printf.sprintf "core%d" i)
          ~interlock ~bbcache config env ctxs)
  in
  (* Coherence wiring: timing penalties from the directory, plus physical
     invalidation of other cores' cached copies on writes (without it the
     other core would keep hitting its stale line and no coherence traffic
     would ever be modeled). *)
  let invalidate_others me paddr =
    Array.iteri
      (fun j other ->
        if j <> me then begin
          Hierarchy.invalidate_line other.Ooo_core.hierarchy paddr;
          Coherence.note_evict directory ~core:j ~paddr
        end)
      cores
  in
  Array.iteri
    (fun i core ->
      Hierarchy.set_remote_penalty core.Ooo_core.hierarchy (fun ~paddr ~write ->
          let p = Coherence.miss_penalty directory ~core:i ~paddr ~write in
          if write then invalidate_others i paddr;
          p);
      Hierarchy.set_remote_write_hit core.Ooo_core.hierarchy (fun ~paddr ->
          let p = Coherence.write_hit_penalty directory ~core:i ~paddr in
          if p > 0 then invalidate_others i paddr;
          p))
    cores;
  { env; cores; directory }

let all_idle t = Array.for_all Ooo_core.all_idle t.cores

(** One global cycle: each core advances by one cycle in round-robin
    order, then simulated time advances. *)
let step t =
  Array.iter Ooo_core.step t.cores;
  t.env.Env.cycle <- t.env.Env.cycle + 1

(** Run until all cores idle or [max_cycles] pass; returns cycles run. *)
let run t ~max_cycles =
  let start = t.env.Env.cycle in
  let stop = ref false in
  while (not !stop) && t.env.Env.cycle - start < max_cycles do
    if all_idle t then stop := true else step t
  done;
  t.env.Env.cycle - start

let total_insns t = Array.fold_left (fun a c -> a + Ooo_core.insns c) 0 t.cores
